//! Level 2: the algebra `A'` over augmented action trees (paper Section 6).
//!
//! This level captures the *abstract effect* of Moss-style locking without
//! any locking machinery: `perform_{A,u}` waits until every live datastep
//! on the object is visible to `A` (d12), live accesses see exactly the
//! fold of their visible data-predecessors (d13), and each perform appends
//! to the object's `data_T` order (d23). Theorem 14 — computable states
//! have `perm(T)` data-serializable — is the paper's hardest result and is
//! checked exhaustively/randomly by the experiments against this algebra.

use crate::common;
use crate::values::ValuePool;
use rnt_algebra::Algebra;
use rnt_model::{fold_updates, Aat, ActionId, TxEvent, Universe, Value};
use std::sync::Arc;

/// The level-2 abstract-locking algebra.
pub struct Level2 {
    universe: Arc<Universe>,
    pool: ValuePool,
}

impl Level2 {
    /// Build the algebra over a universe.
    pub fn new(universe: Arc<Universe>) -> Self {
        let pool = ValuePool::for_universe(&universe);
        Level2 { universe, pool }
    }

    /// The universe this algebra draws actions from.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Precondition (d12): every *live* datastep on `A`'s object is visible
    /// to `A`.
    pub fn d12_holds(&self, aat: &Aat, a: &ActionId) -> bool {
        let x = self.universe.object_of(a).expect("d12 of a non-access");
        aat.data_order(x)
            .iter()
            .filter(|b| aat.tree.is_live(b))
            .all(|b| aat.tree.is_visible_to(b, a))
    }

    /// The value (d13) a *live* access must see: the fold of
    /// `⟨visible_T(A, x); data_T⟩` over `init(x)`.
    pub fn expected_value(&self, aat: &Aat, a: &ActionId) -> Value {
        let x = self.universe.object_of(a).expect("expected_value of a non-access");
        let init = self.universe.init_of(x).expect("declared object");
        fold_updates(
            init,
            aat.data_order(x)
                .iter()
                .filter(|b| aat.tree.is_visible_to(b, a))
                .map(|b| self.universe.update_of(b).expect("datastep is access")),
        )
    }

    /// Apply `perform_{A,u}` if its preconditions hold.
    fn apply_perform(&self, aat: &Aat, a: &ActionId, value: Value) -> Option<Aat> {
        let u = &self.universe;
        // (d11) + access check.
        if !u.is_access(a) || !aat.tree.is_active(a) {
            return None;
        }
        let x = u.object_of(a).expect("access has object");
        // (d12).
        if !self.d12_holds(aat, a) {
            return None;
        }
        // (d13): only constrains live accesses; orphans may see anything.
        if aat.tree.is_live(a) && value != self.expected_value(aat, a) {
            return None;
        }
        let mut next = aat.clone();
        next.tree.set_committed(a); // (d21)
        next.tree.set_label(a.clone(), value); // (d22)
        next.append_datastep(x, a.clone()); // (d23)
        Some(next)
    }
}

impl Algebra for Level2 {
    type State = Aat;
    type Event = TxEvent;

    fn initial(&self) -> Aat {
        Aat::trivial()
    }

    fn apply(&self, aat: &Aat, event: &TxEvent) -> Option<Aat> {
        let u = &self.universe;
        match event {
            TxEvent::Create(a) => {
                if !common::create_enabled(u, &aat.tree, a) {
                    return None;
                }
                let mut next = aat.clone();
                common::create_apply(&mut next.tree, a);
                Some(next)
            }
            TxEvent::Commit(a) => {
                if !common::commit_enabled(u, &aat.tree, a) {
                    return None;
                }
                let mut next = aat.clone();
                common::commit_apply(&mut next.tree, a);
                Some(next)
            }
            TxEvent::Abort(a) => {
                if !common::abort_enabled(u, &aat.tree, a) {
                    return None;
                }
                let mut next = aat.clone();
                common::abort_apply(&mut next.tree, a);
                Some(next)
            }
            TxEvent::Perform(a, value) => self.apply_perform(aat, a, *value),
            TxEvent::ReleaseLock(..) | TxEvent::LoseLock(..) => None,
        }
    }

    fn enabled(&self, aat: &Aat) -> Vec<TxEvent> {
        let u = &self.universe;
        let mut out = Vec::new();
        for a in u.actions() {
            if common::create_enabled(u, &aat.tree, a) {
                out.push(TxEvent::Create(a.clone()));
            }
            if !aat.tree.is_active(a) {
                continue;
            }
            if u.is_access(a) {
                if self.d12_holds(aat, a) {
                    if aat.tree.is_live(a) {
                        out.push(TxEvent::Perform(a.clone(), self.expected_value(aat, a)));
                    } else {
                        // Orphan: any candidate value is allowed by d13.
                        let x = u.object_of(a).expect("access has object");
                        for &value in self.pool.values(x) {
                            out.push(TxEvent::Perform(a.clone(), value));
                        }
                    }
                }
            } else if common::commit_enabled(u, &aat.tree, a) {
                out.push(TxEvent::Commit(a.clone()));
            }
            if common::abort_enabled(u, &aat.tree, a) {
                out.push(TxEvent::Abort(a.clone()));
            }
        }
        out
    }
}

/// Lemma 10 invariants for computable level-2 states.
///
/// * (a) a committed parent has all its children done;
/// * (b) `U` is active;
/// * (c) data-predecessors are dead or visible to their successors;
/// * (d) descendants of a committed action are dead or visible to it.
pub fn lemma10_invariants(aat: &Aat, universe: &Universe) -> Result<(), String> {
    let tree = &aat.tree;
    // (a)
    for a in tree.vertices() {
        if let Some(p) = a.parent() {
            if tree.is_committed(&p) && !tree.is_done(a) {
                return Err(format!("lemma 10a: {a} not done under committed parent {p}"));
            }
        }
    }
    // (b)
    if !tree.is_active(&ActionId::root()) {
        return Err("lemma 10b: U not active".into());
    }
    // (c)
    for x in aat.data_objects() {
        let order = aat.data_order(x);
        for (i, b) in order.iter().enumerate() {
            for a in &order[i + 1..] {
                if !tree.is_dead(b) && !tree.is_visible_to(b, a) {
                    return Err(format!("lemma 10c: live {b} ≺ {a} but not visible"));
                }
            }
        }
    }
    // (d)
    for a in tree.vertices().filter(|a| tree.is_committed(a)).cloned().collect::<Vec<_>>() {
        for b in tree.descendants_in_tree(&a) {
            if !tree.is_dead(b) && !tree.is_visible_to(b, &a) {
                return Err(format!("lemma 10d: live descendant {b} of committed {a} invisible"));
            }
        }
    }
    let _ = universe;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_algebra::{explore, is_valid, replay, ExploreConfig};
    use rnt_model::{act, UniverseBuilder, UpdateFn};

    fn universe() -> Arc<Universe> {
        Arc::new(
            UniverseBuilder::new()
                .object(0, 1)
                .action(act![0])
                .access(act![0, 0], 0, UpdateFn::Add(1))
                .action(act![1])
                .access(act![1, 0], 0, UpdateFn::Mul(2))
                .build()
                .unwrap(),
        )
    }

    fn serial_run() -> Vec<TxEvent> {
        vec![
            TxEvent::Create(act![0]),
            TxEvent::Create(act![0, 0]),
            TxEvent::Perform(act![0, 0], 1),
            TxEvent::Commit(act![0]),
            TxEvent::Create(act![1]),
            TxEvent::Create(act![1, 0]),
            TxEvent::Perform(act![1, 0], 4),
            TxEvent::Commit(act![1]),
        ]
    }

    #[test]
    fn serial_run_valid_with_determined_values() {
        let alg = Level2::new(universe());
        // 0.0 sees init=1 (writes 2); 1.0 sees 2*... wait: Add(1) then Mul(2):
        // 1.0 sees result after 0.0 = 2; perform records the value *seen*.
        let run = vec![
            TxEvent::Create(act![0]),
            TxEvent::Create(act![0, 0]),
            TxEvent::Perform(act![0, 0], 1),
            TxEvent::Commit(act![0]),
            TxEvent::Create(act![1]),
            TxEvent::Create(act![1, 0]),
            TxEvent::Perform(act![1, 0], 2),
            TxEvent::Commit(act![1]),
        ];
        assert!(is_valid(&alg, run));
        // The d13-violating label 4 is rejected.
        assert!(!is_valid(&alg, serial_run()));
    }

    #[test]
    fn d12_blocks_concurrent_uncommitted_access() {
        let alg = Level2::new(universe());
        let run = vec![
            TxEvent::Create(act![0]),
            TxEvent::Create(act![0, 0]),
            TxEvent::Perform(act![0, 0], 1),
            // act![0] NOT committed: its datastep is live but not visible
            // to act![1,0].
            TxEvent::Create(act![1]),
            TxEvent::Create(act![1, 0]),
        ];
        let states = replay(&alg, run).unwrap();
        let last = states.last().unwrap();
        assert!(!alg.d12_holds(last, &act![1, 0]));
        assert!(alg.apply(last, &TxEvent::Perform(act![1, 0], 2)).is_none());
        // After committing act![0], the perform becomes enabled.
        let committed = alg.apply(last, &TxEvent::Commit(act![0])).unwrap();
        assert!(alg.apply(&committed, &TxEvent::Perform(act![1, 0], 2)).is_some());
    }

    #[test]
    fn aborted_competitor_unblocks_perform() {
        let alg = Level2::new(universe());
        let run = vec![
            TxEvent::Create(act![0]),
            TxEvent::Create(act![0, 0]),
            TxEvent::Perform(act![0, 0], 1),
            TxEvent::Create(act![1]),
            TxEvent::Create(act![1, 0]),
            TxEvent::Abort(act![0]), // kills the datastep
        ];
        let states = replay(&alg, run).unwrap();
        let last = states.last().unwrap();
        assert!(alg.d12_holds(last, &act![1, 0]));
        // The dead datastep is excluded from the visible fold: sees init=1.
        assert_eq!(alg.expected_value(last, &act![1, 0]), 1);
        assert!(alg.apply(last, &TxEvent::Perform(act![1, 0], 1)).is_some());
    }

    #[test]
    fn orphan_perform_allows_any_pool_value() {
        let alg = Level2::new(universe());
        let run = vec![
            TxEvent::Create(act![0]),
            TxEvent::Create(act![0, 0]),
            TxEvent::Abort(act![0]), // act![0,0] is now an orphan
        ];
        let states = replay(&alg, run).unwrap();
        let last = states.last().unwrap();
        // d13 does not constrain the orphan: label 999 is fine if we apply
        // directly (enabled() restricts to the pool only for enumeration).
        assert!(alg.apply(last, &TxEvent::Perform(act![0, 0], 999)).is_some());
        let evs = alg.enabled(last);
        let performs: Vec<_> = e_performs(&evs, &act![0, 0]);
        assert!(performs.len() > 1, "orphan perform should branch over the pool");
    }

    fn e_performs<'a>(evs: &'a [TxEvent], a: &ActionId) -> Vec<&'a TxEvent> {
        evs.iter().filter(|e| matches!(e, TxEvent::Perform(b, _) if b == a)).collect()
    }

    #[test]
    fn theorem14_exhaustive_small() {
        let alg = Level2::new(universe());
        let u = universe();
        let report =
            explore(&alg, &ExploreConfig { max_states: 200_000, max_depth: 0 }, |aat: &Aat| {
                if aat.perm().is_data_serializable(&u) {
                    Ok(())
                } else {
                    Err("theorem 14 violated: perm(T) not data-serializable".into())
                }
            })
            .unwrap_or_else(|ce| panic!("{ce}"));
        assert!(!report.truncated, "universe too large for exhaustive check");
        assert!(report.states > 500, "expected a nontrivial state space");
    }

    #[test]
    fn lemma10_exhaustive_small() {
        let alg = Level2::new(universe());
        let u = universe();
        let report =
            explore(&alg, &ExploreConfig { max_states: 200_000, max_depth: 0 }, |aat: &Aat| {
                lemma10_invariants(aat, &u)
            })
            .unwrap_or_else(|ce| panic!("{ce}"));
        assert!(!report.truncated);
    }

    #[test]
    fn enabled_matches_apply() {
        let alg = Level2::new(universe());
        let mut state = alg.initial();
        for _ in 0..8 {
            let evs = alg.enabled(&state);
            for e in &evs {
                assert!(alg.apply(&state, e).is_some(), "enabled event {e} rejected");
            }
            let Some(e) = evs.into_iter().last() else { break };
            state = alg.apply(&state, &e).unwrap();
        }
    }
}
