//! Candidate perform-values for event enumeration.
//!
//! The paper allows `perform_{A,u}` for *any* `u ∈ values(x)` meeting the
//! preconditions. At level 1 a label is unconstrained until the access's
//! ancestors commit (`C` only restricts `perm(T)`), and at level 2 an
//! *orphan's* label is unconstrained (d13 is conditional on liveness) — so
//! exhaustive exploration needs a finite candidate set. We use the *value
//! closure*: every value an object can take under sequences of its
//! declared accesses' updates, which covers every label any serializable
//! execution could produce. Exploration restricted to this pool is
//! documented in DESIGN.md as the finite event-parameter restriction.

use rnt_model::{ObjectId, Universe, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Per-object candidate values for `perform` events.
#[derive(Clone, Debug)]
pub struct ValuePool {
    pool: BTreeMap<ObjectId, Vec<Value>>,
}

/// Cap on the closure size per object; each access occurs at most once in a
/// tree, so the true closure is finite, but we bound the computation
/// defensively for universes with many accesses.
const MAX_POOL: usize = 256;

impl ValuePool {
    /// Compute the value closure of each declared object under its
    /// accesses' update functions.
    pub fn for_universe(universe: &Universe) -> Self {
        let mut pool = BTreeMap::new();
        for obj in universe.objects() {
            let updates: Vec<_> = universe
                .accesses()
                .filter(|(_, spec)| spec.object == obj.id)
                .map(|(_, spec)| spec.update)
                .collect();
            let mut seen: BTreeSet<Value> = BTreeSet::new();
            let mut frontier = std::collections::VecDeque::from([obj.init]);
            seen.insert(obj.init);
            // Breadth-first so that the cap keeps the *shallow* closure —
            // values reachable with few updates — rather than one deep chain.
            while let Some(v) = frontier.pop_front() {
                if seen.len() >= MAX_POOL {
                    break;
                }
                for u in &updates {
                    let w = u.apply(v);
                    if seen.insert(w) {
                        frontier.push_back(w);
                    }
                }
            }
            pool.insert(obj.id, seen.into_iter().collect());
        }
        ValuePool { pool }
    }

    /// The candidate values for object `x`.
    pub fn values(&self, x: ObjectId) -> &[Value] {
        self.pool.get(&x).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_model::{act, UniverseBuilder, UpdateFn};

    #[test]
    fn closure_contains_all_access_results() {
        let u = UniverseBuilder::new()
            .object(0, 1)
            .action(act![0])
            .access(act![0, 0], 0, UpdateFn::Add(1))
            .action(act![1])
            .access(act![1, 0], 0, UpdateFn::Mul(3))
            .build()
            .unwrap();
        let pool = ValuePool::for_universe(&u);
        let vals = pool.values(ObjectId(0));
        // init=1; {1, 2, 3, 6, 4, 7, 12, ...} — at least these:
        for v in [1, 2, 3, 6] {
            assert!(vals.contains(&v), "missing {v} in {vals:?}");
        }
    }

    #[test]
    fn closure_of_write_only() {
        let u = UniverseBuilder::new()
            .object(0, 0)
            .access(act![0], 0, UpdateFn::Write(9))
            .build()
            .unwrap();
        let pool = ValuePool::for_universe(&u);
        assert_eq!(pool.values(ObjectId(0)), &[0, 9]);
    }

    #[test]
    fn unknown_object_empty() {
        let u = UniverseBuilder::new().build().unwrap();
        let pool = ValuePool::for_universe(&u);
        assert!(pool.values(ObjectId(5)).is_empty());
    }

    #[test]
    fn pool_is_capped() {
        // Add(1) alone would diverge without each-access-once reasoning;
        // the cap keeps the computation bounded.
        let u = UniverseBuilder::new()
            .object(0, 0)
            .access(act![0], 0, UpdateFn::Add(1))
            .build()
            .unwrap();
        let pool = ValuePool::for_universe(&u);
        assert!(pool.values(ObjectId(0)).len() <= super::MAX_POOL);
        assert!(pool.values(ObjectId(0)).contains(&0));
        assert!(pool.values(ObjectId(0)).contains(&1));
    }
}
