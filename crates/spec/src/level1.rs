//! Level 1: the algebra `A` over action trees (paper Section 4).
//!
//! This algebra is the *specification* of correct behavior: events carry
//! only the basic preconditions (a1)–(d1), plus the implicit global
//! constraint `C` — the result of every event must leave `perm(T)`
//! serializable. Only `commit` and `perform` can violate `C` (creating or
//! aborting an *active* action never changes `perm(T)`), so only those
//! events re-check it, exactly as the paper observes.
//!
//! Deciding `C` is done by the brute-force serializability search of
//! `rnt_model::serial`; this is exponential and confines the executable
//! level-1 algebra to small universes — which is its role: the top of the
//! simulation tower, not an implementation.

use crate::common;
use crate::values::ValuePool;
use rnt_algebra::Algebra;
use rnt_model::serial::is_serializable_bruteforce;
use rnt_model::{ActionTree, TxEvent, Universe};
use std::sync::Arc;

/// The level-1 specification algebra.
pub struct Level1 {
    universe: Arc<Universe>,
    pool: ValuePool,
}

impl Level1 {
    /// Build the algebra over a universe.
    pub fn new(universe: Arc<Universe>) -> Self {
        let pool = ValuePool::for_universe(&universe);
        Level1 { universe, pool }
    }

    /// The universe this algebra draws actions from.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The constraint `C`: is `perm(T)` serializable?
    pub fn satisfies_c(&self, tree: &ActionTree) -> bool {
        is_serializable_bruteforce(&tree.perm(), &self.universe)
    }
}

impl Algebra for Level1 {
    type State = ActionTree;
    type Event = TxEvent;

    fn initial(&self) -> ActionTree {
        ActionTree::trivial()
    }

    fn apply(&self, tree: &ActionTree, event: &TxEvent) -> Option<ActionTree> {
        let u = &self.universe;
        match event {
            TxEvent::Create(a) => {
                if !common::create_enabled(u, tree, a) {
                    return None;
                }
                let mut next = tree.clone();
                common::create_apply(&mut next, a);
                Some(next) // cannot violate C
            }
            TxEvent::Commit(a) => {
                if !common::commit_enabled(u, tree, a) {
                    return None;
                }
                let mut next = tree.clone();
                common::commit_apply(&mut next, a);
                self.satisfies_c(&next).then_some(next)
            }
            TxEvent::Abort(a) => {
                if !common::abort_enabled(u, tree, a) {
                    return None;
                }
                let mut next = tree.clone();
                common::abort_apply(&mut next, a);
                Some(next) // cannot violate C
            }
            TxEvent::Perform(a, value) => {
                // (d1): A is an active access.
                if !u.is_access(a) || !tree.is_active(a) {
                    return None;
                }
                let mut next = tree.clone();
                next.set_committed(a);
                next.set_label(a.clone(), *value);
                self.satisfies_c(&next).then_some(next)
            }
            // Lock events are not in Π at level 1.
            TxEvent::ReleaseLock(..) | TxEvent::LoseLock(..) => None,
        }
    }

    fn enabled(&self, tree: &ActionTree) -> Vec<TxEvent> {
        let u = &self.universe;
        let mut out = Vec::new();
        for a in u.actions() {
            if common::create_enabled(u, tree, a) {
                out.push(TxEvent::Create(a.clone()));
            }
            if !tree.is_active(a) {
                continue;
            }
            if u.is_access(a) {
                let x = u.object_of(a).expect("access has object");
                for &value in self.pool.values(x) {
                    let ev = TxEvent::Perform(a.clone(), value);
                    if self.apply(tree, &ev).is_some() {
                        out.push(ev);
                    }
                }
            } else if common::commit_enabled(u, tree, a) {
                let ev = TxEvent::Commit(a.clone());
                if self.apply(tree, &ev).is_some() {
                    out.push(ev);
                }
            }
            if common::abort_enabled(u, tree, a) {
                out.push(TxEvent::Abort(a.clone()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_algebra::{explore, is_valid, replay, ExploreConfig};
    use rnt_model::{act, ActionId, UniverseBuilder, UpdateFn};

    fn universe() -> Arc<Universe> {
        Arc::new(
            UniverseBuilder::new()
                .object(0, 1)
                .action(act![0])
                .access(act![0, 0], 0, UpdateFn::Add(1))
                .action(act![1])
                .access(act![1, 0], 0, UpdateFn::Mul(2))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn serial_run_is_valid() {
        let alg = Level1::new(universe());
        let run = vec![
            TxEvent::Create(act![0]),
            TxEvent::Create(act![0, 0]),
            TxEvent::Perform(act![0, 0], 1),
            TxEvent::Commit(act![0]),
            TxEvent::Create(act![1]),
            TxEvent::Create(act![1, 0]),
            TxEvent::Perform(act![1, 0], 2),
            TxEvent::Commit(act![1]),
        ];
        assert!(is_valid(&alg, run));
    }

    #[test]
    fn wrong_label_blocks_commit_not_perform() {
        let alg = Level1::new(universe());
        // Record a garbage label while ancestors are active: allowed,
        // because perm(T) does not yet contain the access.
        let prefix = vec![
            TxEvent::Create(act![0]),
            TxEvent::Create(act![0, 0]),
            TxEvent::Perform(act![0, 0], 999),
        ];
        let states = replay(&alg, prefix.clone()).expect("garbage label is not yet visible");
        // But committing the parent would put it into perm(T): C blocks it.
        let last = states.last().unwrap();
        assert!(alg.apply(last, &TxEvent::Commit(act![0])).is_none());
        // Aborting instead is fine — resilience in action.
        assert!(alg.apply(last, &TxEvent::Abort(act![0])).is_some());
    }

    #[test]
    fn perform_requires_active_access() {
        let alg = Level1::new(universe());
        let t = ActionTree::trivial();
        assert!(alg.apply(&t, &TxEvent::Perform(act![0, 0], 1)).is_none(), "not created");
        assert!(alg.apply(&t, &TxEvent::Perform(act![0], 1)).is_none(), "not an access");
    }

    #[test]
    fn lock_events_rejected() {
        let alg = Level1::new(universe());
        let t = ActionTree::trivial();
        assert!(alg.apply(&t, &TxEvent::ReleaseLock(act![0], rnt_model::ObjectId(0))).is_none());
        assert!(alg.apply(&t, &TxEvent::LoseLock(act![0], rnt_model::ObjectId(0))).is_none());
    }

    #[test]
    fn enabled_events_all_apply() {
        let alg = Level1::new(universe());
        let mut state = alg.initial();
        for _ in 0..6 {
            let evs = alg.enabled(&state);
            for e in &evs {
                assert!(alg.apply(&state, e).is_some());
            }
            let Some(e) = evs.into_iter().next() else { break };
            state = alg.apply(&state, &e).unwrap();
        }
    }

    #[test]
    fn exploration_preserves_c_by_construction() {
        let alg = Level1::new(universe());
        let report =
            explore(&alg, &ExploreConfig { max_states: 30_000, max_depth: 0 }, |t: &ActionTree| {
                if is_serializable_bruteforce(&t.perm(), &universe()) {
                    Ok(())
                } else {
                    Err("C violated".into())
                }
            })
            .unwrap_or_else(|ce| panic!("{ce}"));
        assert!(report.states > 100, "level 1 should branch: got {}", report.states);
    }

    #[test]
    fn root_cannot_be_committed_or_aborted() {
        let alg = Level1::new(universe());
        let t = alg.initial();
        assert!(alg.apply(&t, &TxEvent::Commit(ActionId::root())).is_none());
        assert!(alg.apply(&t, &TxEvent::Abort(ActionId::root())).is_none());
    }
}
