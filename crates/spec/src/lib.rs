//! # rnt-spec
//!
//! The top two levels of the paper's five-level algebra tower:
//!
//! * [`Level1`] — the specification algebra `A` over action trees
//!   (Section 4), with the global serializability constraint `C`;
//! * [`Level2`] — the abstract-locking algebra `A'` over augmented action
//!   trees (Section 6), whose computable states all satisfy Theorem 14;
//! * [`HSpec`] — the possibilities mapping `h : A' → A` of Lemma 15;
//! * [`lemma10_invariants`] — executable Lemma 10;
//! * [`ValuePool`] and the shared `create`/`commit`/`abort`
//!   preconditions/effects ([`common`]) reused by levels 3–5.
//!
//! ```
//! use rnt_algebra::{replay, Algebra};
//! use rnt_model::{act, TxEvent, UniverseBuilder, UpdateFn};
//! use rnt_spec::Level2;
//! use std::sync::Arc;
//!
//! let universe = Arc::new(
//!     UniverseBuilder::new()
//!         .object(0, 5)
//!         .action(act![0])
//!         .access(act![0, 0], 0, UpdateFn::Add(1))
//!         .build()
//!         .unwrap(),
//! );
//! let level2 = Level2::new(universe.clone());
//! let states = replay(&level2, vec![
//!     TxEvent::Create(act![0]),
//!     TxEvent::Create(act![0, 0]),
//!     TxEvent::Perform(act![0, 0], 5), // d13: must see init(x0)
//!     TxEvent::Commit(act![0]),
//! ]).unwrap();
//! // Theorem 14: the permanent subtree is data-serializable.
//! assert!(states.last().unwrap().perm().is_data_serializable(&universe));
//! ```

#![warn(missing_docs)]

pub mod common;
mod level1;
mod level2;
mod mapping;
mod values;

pub use level1::Level1;
pub use level2::{lemma10_invariants, Level2};
pub use mapping::HSpec;
pub use values::ValuePool;
