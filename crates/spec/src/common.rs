//! Preconditions and effects shared verbatim by levels 1–5 for the
//! `create`, `commit` and `abort` events (the paper defines them once at
//! level 1 and reuses them by name at every later level).

use rnt_model::{ActionId, ActionTree, Universe};

/// Precondition of `create_A` (a1): `A` declared, not yet in the tree, and
/// its parent present and not committed.
pub fn create_enabled(universe: &Universe, tree: &ActionTree, a: &ActionId) -> bool {
    !a.is_root()
        && universe.contains(a)
        && !tree.contains(a)
        && a.parent().is_some_and(|p| tree.contains(&p) && !tree.is_committed(&p))
}

/// Effect of `create_A` (a2).
pub fn create_apply(tree: &mut ActionTree, a: &ActionId) {
    tree.create(a.clone());
}

/// Precondition of `commit_A` (b1): `A` a non-access, active, with every
/// child present in the tree already done.
pub fn commit_enabled(universe: &Universe, tree: &ActionTree, a: &ActionId) -> bool {
    !a.is_root()
        && universe.contains(a)
        && !universe.is_access(a)
        && tree.is_active(a)
        && tree.children_in_tree(a).all(|c| tree.is_done(c))
}

/// Effect of `commit_A` (b2).
pub fn commit_apply(tree: &mut ActionTree, a: &ActionId) {
    tree.set_committed(a);
}

/// Precondition of `abort_A` (c1): `A` active (accesses included).
pub fn abort_enabled(universe: &Universe, tree: &ActionTree, a: &ActionId) -> bool {
    !a.is_root() && universe.contains(a) && tree.is_active(a)
}

/// Effect of `abort_A` (c2).
pub fn abort_apply(tree: &mut ActionTree, a: &ActionId) {
    tree.set_aborted(a);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_model::{act, UniverseBuilder, UpdateFn};

    fn universe() -> Universe {
        UniverseBuilder::new()
            .object(0, 0)
            .action(act![0])
            .access(act![0, 0], 0, UpdateFn::Read)
            .action(act![1])
            .build()
            .unwrap()
    }

    #[test]
    fn create_preconditions() {
        let u = universe();
        let mut t = ActionTree::trivial();
        assert!(create_enabled(&u, &t, &act![0]));
        assert!(!create_enabled(&u, &t, &act![0, 0]), "parent absent");
        assert!(!create_enabled(&u, &t, &act![7]), "undeclared");
        assert!(!create_enabled(&u, &t, &ActionId::root()), "root implicit");
        create_apply(&mut t, &act![0]);
        assert!(!create_enabled(&u, &t, &act![0]), "already present");
        assert!(create_enabled(&u, &t, &act![0, 0]));
        // Committed parent blocks creation; aborted parent does NOT
        // (the paper explicitly allows creating under an aborted parent).
        t.set_committed(&act![0]);
        assert!(!create_enabled(&u, &t, &act![0, 0]));
        let mut t2 = ActionTree::trivial();
        create_apply(&mut t2, &act![0]);
        t2.set_aborted(&act![0]);
        assert!(create_enabled(&u, &t2, &act![0, 0]), "orphan creation allowed");
    }

    #[test]
    fn commit_preconditions() {
        let u = universe();
        let mut t = ActionTree::trivial();
        create_apply(&mut t, &act![0]);
        create_apply(&mut t, &act![0, 0]);
        assert!(!commit_enabled(&u, &t, &act![0]), "child not done");
        assert!(!commit_enabled(&u, &t, &act![0, 0]), "accesses never plain-commit");
        t.set_committed(&act![0, 0]);
        assert!(commit_enabled(&u, &t, &act![0]));
        commit_apply(&mut t, &act![0]);
        assert!(!commit_enabled(&u, &t, &act![0]), "no recommit");
        // Aborted children also count as done.
        create_apply(&mut t, &act![1]);
        assert!(commit_enabled(&u, &t, &act![1]), "childless commit ok");
    }

    #[test]
    fn abort_preconditions() {
        let u = universe();
        let mut t = ActionTree::trivial();
        create_apply(&mut t, &act![0]);
        create_apply(&mut t, &act![0, 0]);
        assert!(abort_enabled(&u, &t, &act![0]), "abort needs no done children");
        assert!(abort_enabled(&u, &t, &act![0, 0]), "accesses may abort");
        abort_apply(&mut t, &act![0]);
        assert!(!abort_enabled(&u, &t, &act![0]));
        assert!(!abort_enabled(&u, &t, &ActionId::root()), "U never aborts");
    }
}
