//! Serializability by definition (paper Section 3.4): explicit enumeration
//! of linearizing sibling orders.
//!
//! These checkers are exponential in the sibling-group sizes and exist as
//! *ground truth*: Theorem 9's cycle-free characterization
//! ([`crate::Aat::is_data_serializable`]) is cross-validated against them in
//! tests and in experiment E2, and the Level-1 specification algebra uses
//! them to decide its global constraint `C` on small trees.

use crate::action::ActionId;
use crate::object::fold_updates;
use crate::tree::ActionTree;
use crate::universe::Universe;
use crate::Aat;
use std::collections::BTreeMap;

/// A linearizing partial order `p`: a total order on every sibling group of
/// the tree, represented as a rank per non-root vertex within its group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Linearization {
    rank: BTreeMap<ActionId, usize>,
}

impl Linearization {
    /// The rank of `a` within its sibling group.
    pub fn rank(&self, a: &ActionId) -> usize {
        *self.rank.get(a).expect("rank of vertex not in linearization")
    }

    /// `(A, B) ∈ induced_{T,p}` for *distinct, non-ancestor-related*
    /// datasteps: compare the sibling ancestors at their lca.
    ///
    /// Returns `None` when the pair is not governed by the induced order
    /// (equal actions, or one an ancestor of the other — impossible for
    /// distinct leaves).
    pub fn induced_precedes(&self, a: &ActionId, b: &ActionId) -> Option<bool> {
        let lca = a.lca(b);
        let a_side = lca.child_towards(a)?;
        let b_side = lca.child_towards(b)?;
        Some(self.rank(&a_side) < self.rank(&b_side))
    }

    /// `preds_{T,p}(A)`: the datasteps on `A`'s object that are visible to
    /// `A` and strictly precede it in the induced order, sorted by the
    /// induced order.
    pub fn preds(&self, tree: &ActionTree, universe: &Universe, a: &ActionId) -> Vec<ActionId> {
        let x = universe.object_of(a).expect("preds of a non-access");
        let mut out: Vec<ActionId> = tree
            .datasteps_of(x, universe)
            .filter(|b| b != a && tree.is_visible_to(b, a))
            .filter(|b| self.induced_precedes(b, a) == Some(true))
            .collect();
        out.sort_by(|p, q| {
            if p == q {
                std::cmp::Ordering::Equal
            } else if self.induced_precedes(p, q) == Some(true) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
        out
    }

    /// True iff `p` is *serializing* for the tree: every datastep's label is
    /// the result of applying its `preds` sequence to `init(x)`.
    pub fn is_serializing(&self, tree: &ActionTree, universe: &Universe) -> bool {
        tree.datasteps(universe).all(|a| {
            let x = universe.object_of(&a).expect("datastep is access");
            let init = universe.init_of(x).expect("declared object");
            let expected = fold_updates(
                init,
                self.preds(tree, universe, &a)
                    .iter()
                    .map(|b| universe.update_of(b).expect("datastep is access")),
            );
            tree.label(&a) == Some(expected)
        })
    }

    /// True iff the induced order is consistent with the AAT's `data_T`
    /// order: for every object, every strict data pair is an induced pair.
    pub fn is_consistent_with_data(&self, aat: &Aat) -> bool {
        aat.data_objects().all(|x| {
            let order = aat.data_order(x);
            order.iter().enumerate().all(|(i, b)| {
                order[i + 1..].iter().all(|a| self.induced_precedes(b, a) == Some(true))
            })
        })
    }
}

/// The sibling groups of a tree's vertex set: children lists keyed by parent.
fn sibling_groups(tree: &ActionTree) -> Vec<Vec<ActionId>> {
    let mut groups: BTreeMap<ActionId, Vec<ActionId>> = BTreeMap::new();
    for a in tree.vertices() {
        if let Some(p) = a.parent() {
            groups.entry(p).or_default().push(a.clone());
        }
    }
    groups.into_values().collect()
}

/// Number of linearizing orders of the tree (product of group factorials).
/// Saturates at `u64::MAX`.
pub fn linearization_count(tree: &ActionTree) -> u64 {
    sibling_groups(tree).iter().fold(1u64, |acc, g| {
        let fact = (1..=g.len() as u64).try_fold(1u64, |f, k| f.checked_mul(k)).unwrap_or(u64::MAX);
        acc.saturating_mul(fact)
    })
}

/// Search for a linearizing order satisfying `pred`, enumerating the product
/// of per-group permutations. Exponential; intended for small trees.
pub fn find_linearization(
    tree: &ActionTree,
    mut pred: impl FnMut(&Linearization) -> bool,
) -> Option<Linearization> {
    let groups = sibling_groups(tree);
    let mut rank: BTreeMap<ActionId, usize> = BTreeMap::new();

    fn rec(
        groups: &[Vec<ActionId>],
        rank: &mut BTreeMap<ActionId, usize>,
        pred: &mut impl FnMut(&Linearization) -> bool,
    ) -> Option<Linearization> {
        let Some((group, rest)) = groups.split_first() else {
            let lin = Linearization { rank: rank.clone() };
            return pred(&lin).then_some(lin);
        };
        let mut perm: Vec<usize> = (0..group.len()).collect();
        // Lexicographic permutation enumeration.
        loop {
            for (pos, &gi) in perm.iter().enumerate() {
                rank.insert(group[gi].clone(), pos);
            }
            if let Some(found) = rec(rest, rank, pred) {
                return Some(found);
            }
            if !next_permutation(&mut perm) {
                break;
            }
        }
        None
    }

    rec(&groups, &mut rank, &mut pred)
}

/// Advance `perm` to the next lexicographic permutation; false at the last.
fn next_permutation(perm: &mut [usize]) -> bool {
    if perm.len() < 2 {
        return false;
    }
    let mut i = perm.len() - 1;
    while i > 0 && perm[i - 1] >= perm[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = perm.len() - 1;
    while perm[j] <= perm[i - 1] {
        j -= 1;
    }
    perm.swap(i - 1, j);
    perm[i..].reverse();
    true
}

/// Serializability by definition: does some linearizing order serialize the
/// tree? (Paper Section 3.4.) Exponential; small trees only.
pub fn is_serializable_bruteforce(tree: &ActionTree, universe: &Universe) -> bool {
    find_linearization(tree, |lin| lin.is_serializing(tree, universe)).is_some()
}

/// Data-serializability by definition (paper Section 5.1): a serializing
/// order whose induced order is consistent with `data_T`.
pub fn is_data_serializable_bruteforce(aat: &Aat, universe: &Universe) -> bool {
    find_linearization(&aat.tree, |lin| {
        lin.is_consistent_with_data(aat) && lin.is_serializing(&aat.tree, universe)
    })
    .is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act;
    use crate::object::{ObjectId, UpdateFn};
    use crate::universe::UniverseBuilder;

    fn universe() -> Universe {
        UniverseBuilder::new()
            .object(0, 1)
            .action(act![0])
            .access(act![0, 0], 0, UpdateFn::Add(1))
            .action(act![1])
            .access(act![1, 0], 0, UpdateFn::Mul(2))
            .build()
            .unwrap()
    }

    /// Tree where both accesses committed fully; labels chosen per `order`.
    fn committed_tree(label0: i64, label1: i64) -> ActionTree {
        let mut t = ActionTree::trivial();
        for a in [act![0], act![1]] {
            t.create(a);
        }
        for a in [act![0, 0], act![1, 0]] {
            t.create(a.clone());
            t.set_committed(&a);
        }
        t.set_committed(&act![0]);
        t.set_committed(&act![1]);
        t.set_label(act![0, 0], label0);
        t.set_label(act![1, 0], label1);
        t
    }

    #[test]
    fn next_permutation_walks_all() {
        let mut p = vec![0, 1, 2];
        let mut seen = vec![p.clone()];
        while next_permutation(&mut p) {
            seen.push(p.clone());
        }
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], vec![0, 1, 2]);
        assert_eq!(seen[5], vec![2, 1, 0]);
    }

    #[test]
    fn linearization_count_products() {
        let t = committed_tree(0, 0);
        // Groups: {act0, act1} (2!), {act0.0} (1!), {act1.0} (1!).
        assert_eq!(linearization_count(&t), 2);
    }

    #[test]
    fn serializable_when_labels_match_some_order() {
        let u = universe();
        // Order "0 then 1": 0.0 sees init=1, 1.0 sees 2.
        assert!(is_serializable_bruteforce(&committed_tree(1, 2), &u));
        // Order "1 then 0": 1.0 sees 1, 0.0 sees 2.
        assert!(is_serializable_bruteforce(&committed_tree(2, 1), &u));
        // No order explains labels (1, 7).
        assert!(!is_serializable_bruteforce(&committed_tree(1, 7), &u));
    }

    #[test]
    fn data_serializability_respects_data_order() {
        let u = universe();
        // Labels match "0 then 1", but data order says 1 before 0.
        let mut aat = Aat::from_tree(committed_tree(1, 2));
        aat.append_datastep(ObjectId(0), act![1, 0]);
        aat.append_datastep(ObjectId(0), act![0, 0]);
        assert!(is_serializable_bruteforce(&aat.tree, &u));
        assert!(!is_data_serializable_bruteforce(&aat, &u));
        // With the matching data order it is data-serializable.
        let mut good = Aat::from_tree(committed_tree(1, 2));
        good.append_datastep(ObjectId(0), act![0, 0]);
        good.append_datastep(ObjectId(0), act![1, 0]);
        assert!(is_data_serializable_bruteforce(&good, &u));
    }

    #[test]
    fn theorem9_agrees_with_bruteforce_here() {
        let u = universe();
        for (l0, l1, data_rev) in
            [(1, 2, false), (2, 1, true), (1, 7, false), (1, 2, true), (2, 1, false)]
        {
            let mut aat = Aat::from_tree(committed_tree(l0, l1));
            if data_rev {
                aat.append_datastep(ObjectId(0), act![1, 0]);
                aat.append_datastep(ObjectId(0), act![0, 0]);
            } else {
                aat.append_datastep(ObjectId(0), act![0, 0]);
                aat.append_datastep(ObjectId(0), act![1, 0]);
            }
            assert_eq!(
                aat.is_data_serializable(&u),
                is_data_serializable_bruteforce(&aat, &u),
                "theorem 9 disagreement at ({l0},{l1},rev={data_rev})"
            );
        }
    }

    #[test]
    fn preds_sorted_by_induced_order() {
        let u = UniverseBuilder::new()
            .object(0, 0)
            .action(act![0])
            .access(act![0, 0], 0, UpdateFn::Add(1))
            .action(act![1])
            .access(act![1, 0], 0, UpdateFn::Add(2))
            .action(act![2])
            .access(act![2, 0], 0, UpdateFn::Read)
            .build()
            .unwrap();
        let mut t = ActionTree::trivial();
        for a in [act![0], act![1], act![2]] {
            t.create(a.clone());
        }
        for a in [act![0, 0], act![1, 0], act![2, 0]] {
            t.create(a.clone());
            t.set_committed(&a);
            t.set_label(a, 0);
        }
        for a in [act![0], act![1], act![2]] {
            t.set_committed(&a);
        }
        // Find the order 1 < 0 < 2 and check preds of 2.0 comes back sorted.
        let lin = find_linearization(&t, |l| {
            l.rank(&act![1]) == 0 && l.rank(&act![0]) == 1 && l.rank(&act![2]) == 2
        })
        .expect("specific order exists");
        let preds = lin.preds(&t, &u, &act![2, 0]);
        assert_eq!(preds, vec![act![1, 0], act![0, 0]]);
    }

    #[test]
    fn empty_tree_is_serializable() {
        let u = universe();
        assert!(is_serializable_bruteforce(&ActionTree::trivial(), &u));
    }
}
