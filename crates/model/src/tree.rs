//! Action trees: the nested-transaction generalization of the log
//! (paper Section 3.2), with visibility (3.3) and `perm(T)` (3.4).

use crate::action::ActionId;
use crate::object::{ObjectId, Value};
use crate::universe::Universe;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The status of an action that has been created.
///
/// "Committed" means committed *relative to its parent*, not permanently;
/// permanence is captured by [`ActionTree::perm`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Status {
    /// Created and not yet completed.
    Active,
    /// Committed to its parent.
    Committed,
    /// Aborted.
    Aborted,
}

/// An action tree: which actions have been activated, their status, and the
/// value seen by each committed access (its *label*).
///
/// Invariants maintained by the mutating methods:
/// * the vertex set is parent-closed (except that `U` is always present);
/// * only accesses carry labels, and only once committed.
///
/// The tree deliberately does **not** enforce the paper's event
/// *preconditions* (e.g. "commit requires all children done") — those
/// belong to the algebra levels; this type is the shared state language.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct ActionTree {
    status: BTreeMap<ActionId, Status>,
    labels: BTreeMap<ActionId, Value>,
}

impl ActionTree {
    /// The trivial tree: the single vertex `U`, active.
    pub fn trivial() -> Self {
        let mut status = BTreeMap::new();
        status.insert(ActionId::root(), Status::Active);
        ActionTree { status, labels: BTreeMap::new() }
    }

    /// True iff `A` has been activated.
    pub fn contains(&self, a: &ActionId) -> bool {
        self.status.contains_key(a)
    }

    /// The status of `A`, if activated.
    pub fn status(&self, a: &ActionId) -> Option<Status> {
        self.status.get(a).copied()
    }

    /// True iff `A ∈ active_T`.
    pub fn is_active(&self, a: &ActionId) -> bool {
        self.status(a) == Some(Status::Active)
    }

    /// True iff `A ∈ committed_T`.
    pub fn is_committed(&self, a: &ActionId) -> bool {
        self.status(a) == Some(Status::Committed)
    }

    /// True iff `A ∈ aborted_T`.
    pub fn is_aborted(&self, a: &ActionId) -> bool {
        self.status(a) == Some(Status::Aborted)
    }

    /// True iff `A ∈ done_T = committed_T ∪ aborted_T`.
    pub fn is_done(&self, a: &ActionId) -> bool {
        matches!(self.status(a), Some(Status::Committed | Status::Aborted))
    }

    /// All activated actions in name order.
    pub fn vertices(&self) -> impl Iterator<Item = &ActionId> + '_ {
        self.status.keys()
    }

    /// Number of activated actions (including `U`).
    pub fn len(&self) -> usize {
        self.status.len()
    }

    /// True iff only `U` has been activated.
    pub fn is_empty(&self) -> bool {
        self.status.len() <= 1
    }

    /// All activated actions with status, in name order.
    pub fn statuses(&self) -> impl Iterator<Item = (&ActionId, Status)> + '_ {
        self.status.iter().map(|(a, &s)| (a, s))
    }

    /// The label of a datastep, if assigned.
    pub fn label(&self, a: &ActionId) -> Option<Value> {
        self.labels.get(a).copied()
    }

    /// All labelled datasteps in name order.
    pub fn labels(&self) -> impl Iterator<Item = (&ActionId, Value)> + '_ {
        self.labels.iter().map(|(a, &v)| (a, v))
    }

    /// Children of `A` among the activated vertices.
    ///
    /// Uses the path-prefix ordering of [`ActionId`] to range-scan the
    /// vertex map rather than scanning all vertices.
    pub fn children_in_tree<'a>(
        &'a self,
        a: &'a ActionId,
    ) -> impl Iterator<Item = &'a ActionId> + 'a {
        let target_depth = a.depth() + 1;
        self.descendants_in_tree(a).filter(move |b| b.depth() == target_depth)
    }

    /// Activated descendants of `A` (including `A` itself if activated).
    pub fn descendants_in_tree<'a>(
        &'a self,
        a: &'a ActionId,
    ) -> impl Iterator<Item = &'a ActionId> + 'a {
        self.status.range(a.clone()..).map(|(b, _)| b).take_while(move |b| a.is_ancestor_of(b))
    }

    // ---- mutation (raw effects; preconditions live in the algebras) ----

    /// Effect of `create_A`: add `A` with status 'active'.
    ///
    /// # Panics
    /// If `A` is already present or its parent is absent (the vertex set
    /// must stay parent-closed).
    pub fn create(&mut self, a: ActionId) {
        assert!(!a.is_root(), "U is created implicitly");
        assert!(!self.contains(&a), "create of existing action {a}");
        let parent = a.parent().expect("non-root has parent");
        assert!(self.contains(&parent), "create of {a} without parent in tree");
        self.status.insert(a, Status::Active);
    }

    /// Effect of `commit_A` / the status half of `perform`: set status to
    /// 'committed'.
    pub fn set_committed(&mut self, a: &ActionId) {
        let s = self.status.get_mut(a).expect("commit of unknown action");
        *s = Status::Committed;
    }

    /// Effect of `abort_A`: set status to 'aborted'.
    pub fn set_aborted(&mut self, a: &ActionId) {
        let s = self.status.get_mut(a).expect("abort of unknown action");
        *s = Status::Aborted;
    }

    /// Record the label (value seen) of a datastep.
    pub fn set_label(&mut self, a: ActionId, value: Value) {
        self.labels.insert(a, value);
    }

    // ---- visibility (Section 3.3) ----

    /// True iff `B ∈ visible_T(A)`: every ancestor of `B` strictly below
    /// `lca(A, B)` (including `B` itself when applicable) is committed.
    ///
    /// Both actions must be vertices of the tree.
    pub fn is_visible_to(&self, b: &ActionId, a: &ActionId) -> bool {
        let lca = a.lca(b);
        let mut cur = b.clone();
        while lca.is_proper_ancestor_of(&cur) {
            if !self.is_committed(&cur) {
                return false;
            }
            cur = cur.parent().expect("below lca, so non-root");
        }
        true
    }

    /// `visible_T(A)`: all vertices visible to `A`.
    pub fn visible_set(&self, a: &ActionId) -> Vec<ActionId> {
        self.vertices().filter(|b| self.is_visible_to(b, a)).cloned().collect()
    }

    /// `visible_T(A, x)`: datasteps on `x` visible to `A`, in name order.
    pub fn visible_datasteps(
        &self,
        a: &ActionId,
        x: ObjectId,
        universe: &Universe,
    ) -> Vec<ActionId> {
        self.datasteps(universe)
            .filter(|b| universe.object_of(b) == Some(x) && self.is_visible_to(b, a))
            .collect()
    }

    /// True iff `A` is live in `T`: no ancestor of `A` is aborted.
    pub fn is_live(&self, a: &ActionId) -> bool {
        a.ancestors().all(|anc| !self.is_aborted(&anc))
    }

    /// True iff `A` is dead in `T`.
    pub fn is_dead(&self, a: &ActionId) -> bool {
        !self.is_live(a)
    }

    // ---- datasteps and perm (Section 3.4) ----

    /// `datasteps_T`: committed accesses, in name order.
    pub fn datasteps<'a>(&'a self, universe: &'a Universe) -> impl Iterator<Item = ActionId> + 'a {
        self.status
            .iter()
            .filter(move |(a, &s)| s == Status::Committed && universe.is_access(a))
            .map(|(a, _)| a.clone())
    }

    /// `datasteps_T(x)`: committed accesses to `x`, in name order.
    pub fn datasteps_of<'a>(
        &'a self,
        x: ObjectId,
        universe: &'a Universe,
    ) -> impl Iterator<Item = ActionId> + 'a {
        self.datasteps(universe).filter(move |a| universe.object_of(a) == Some(x))
    }

    /// `perm(T)`: the subtree of actions visible to `U` — those whose whole
    /// ancestor chain (except `U`) has committed. Status and labels are
    /// inherited (Lemma 5e guarantees this is a tree).
    pub fn perm(&self) -> ActionTree {
        let root = ActionId::root();
        let mut out = ActionTree::default();
        for (a, &s) in &self.status {
            if self.is_visible_to(a, &root) {
                out.status.insert(a.clone(), s);
                if let Some(v) = self.labels.get(a) {
                    out.labels.insert(a.clone(), *v);
                }
            }
        }
        out
    }

    /// Merge-compare used by action summaries: true iff this tree's data is
    /// contained in `other`'s, component-wise (`T ≤ T'` of Section 9.1,
    /// specialized to trees).
    pub fn le(&self, other: &ActionTree) -> bool {
        self.status.iter().all(|(a, &s)| match (s, other.status(a)) {
            (_, None) => false,
            (Status::Active, Some(_)) => true,
            (Status::Committed, Some(os)) => os == Status::Committed,
            (Status::Aborted, Some(os)) => os == Status::Aborted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act;
    use crate::object::UpdateFn;
    use crate::universe::UniverseBuilder;

    fn universe() -> Universe {
        UniverseBuilder::new()
            .object(0, 0)
            .action(act![0])
            .action(act![0, 0])
            .access(act![0, 0, 0], 0, UpdateFn::Add(1))
            .access(act![0, 1], 0, UpdateFn::Read)
            .action(act![1])
            .access(act![1, 0], 0, UpdateFn::Write(7))
            .build()
            .unwrap()
    }

    fn tree_with(entries: &[(&ActionId, Status)]) -> ActionTree {
        let mut t = ActionTree::trivial();
        // Insert in depth order so parent-closure assertions hold.
        let mut sorted: Vec<_> = entries.to_vec();
        sorted.sort_by_key(|(a, _)| a.depth());
        for (a, s) in sorted {
            t.create((*a).clone());
            match s {
                Status::Active => {}
                Status::Committed => t.set_committed(a),
                Status::Aborted => t.set_aborted(a),
            }
        }
        t
    }

    #[test]
    fn trivial_tree() {
        let t = ActionTree::trivial();
        assert!(t.is_active(&ActionId::root()));
        assert!(t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "without parent")]
    fn create_requires_parent() {
        let mut t = ActionTree::trivial();
        t.create(act![0, 0]);
    }

    #[test]
    fn status_transitions() {
        let mut t = ActionTree::trivial();
        t.create(act![0]);
        assert!(t.is_active(&act![0]));
        t.set_committed(&act![0]);
        assert!(t.is_committed(&act![0]) && t.is_done(&act![0]));
        t.create(act![1]);
        t.set_aborted(&act![1]);
        assert!(t.is_aborted(&act![1]) && t.is_done(&act![1]));
    }

    #[test]
    fn visibility_self_and_ancestors() {
        // Lemma 5a: if B ∈ desc(A) then A ∈ visible(B).
        let t = tree_with(&[(&act![0], Status::Active), (&act![0, 0], Status::Active)]);
        assert!(t.is_visible_to(&act![0], &act![0, 0]));
        assert!(t.is_visible_to(&ActionId::root(), &act![0, 0]));
        // An active non-ancestor is not visible.
        assert!(!t.is_visible_to(&act![0, 0], &ActionId::root()));
    }

    #[test]
    fn visibility_requires_commit_chain() {
        let mut t = tree_with(&[
            (&act![0], Status::Active),
            (&act![0, 0], Status::Committed),
            (&act![1], Status::Active),
        ]);
        // act![0,0] committed but act![0] still active: not visible to act![1].
        assert!(!t.is_visible_to(&act![0, 0], &act![1]));
        // Visible to its own parent's subtree though.
        assert!(t.is_visible_to(&act![0, 0], &act![0]));
        t.set_committed(&act![0]);
        assert!(t.is_visible_to(&act![0, 0], &act![1]));
    }

    #[test]
    fn aborted_blocks_visibility() {
        let t = tree_with(&[(&act![0], Status::Aborted), (&act![0, 0], Status::Committed)]);
        assert!(!t.is_visible_to(&act![0, 0], &ActionId::root()));
    }

    #[test]
    fn lemma5_transitivity_samples() {
        // Lemma 5c on a concrete tree: A ∈ vis(B), B ∈ vis(C) ⇒ A ∈ vis(C).
        let t = tree_with(&[
            (&act![0], Status::Committed),
            (&act![0, 0], Status::Committed),
            (&act![1], Status::Active),
            (&act![1, 0], Status::Committed),
        ]);
        let vs: Vec<_> = t.vertices().cloned().collect();
        for a in &vs {
            for b in &vs {
                for c in &vs {
                    if t.is_visible_to(a, b) && t.is_visible_to(b, c) {
                        assert!(t.is_visible_to(a, c), "lemma 5c failed: {a} {b} {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn live_and_dead() {
        let t = tree_with(&[
            (&act![0], Status::Aborted),
            (&act![0, 0], Status::Committed),
            (&act![1], Status::Active),
        ]);
        assert!(t.is_dead(&act![0]));
        assert!(t.is_dead(&act![0, 0]));
        assert!(t.is_live(&act![1]));
        assert!(t.is_live(&ActionId::root()));
    }

    #[test]
    fn lemma6_live_visible_is_live() {
        let t = tree_with(&[
            (&act![0], Status::Committed),
            (&act![0, 0], Status::Committed),
            (&act![1], Status::Active),
        ]);
        let vs: Vec<_> = t.vertices().cloned().collect();
        for a in vs.iter().filter(|a| t.is_live(a)) {
            for b in &vs {
                if t.is_visible_to(b, a) {
                    assert!(t.is_live(b), "lemma 6 failed: {b} visible to live {a} but dead");
                }
            }
        }
    }

    #[test]
    fn datasteps_and_labels() {
        let u = universe();
        let mut t = tree_with(&[
            (&act![0], Status::Active),
            (&act![0, 1], Status::Committed),
            (&act![1], Status::Active),
            (&act![1, 0], Status::Active),
        ]);
        t.set_label(act![0, 1], 0);
        let ds: Vec<_> = t.datasteps(&u).collect();
        assert_eq!(ds, vec![act![0, 1]]); // act![1,0] not committed
        assert_eq!(t.label(&act![0, 1]), Some(0));
        let ds0: Vec<_> = t.datasteps_of(ObjectId(0), &u).collect();
        assert_eq!(ds0, vec![act![0, 1]]);
    }

    #[test]
    fn perm_keeps_fully_committed_chains() {
        let mut t = tree_with(&[
            (&act![0], Status::Committed),
            (&act![0, 1], Status::Committed),
            (&act![1], Status::Active),
            (&act![1, 0], Status::Committed),
        ]);
        t.set_label(act![0, 1], 3);
        let p = t.perm();
        assert!(p.contains(&ActionId::root()));
        assert!(p.contains(&act![0]) && p.contains(&act![0, 1]));
        // visible_T(U) requires every ancestor below U committed, including
        // the action itself; active act![1] and its subtree are excluded.
        assert!(!p.contains(&act![1]));
        assert!(!p.contains(&act![1, 0]));
        assert_eq!(p.label(&act![0, 1]), Some(3));
    }

    #[test]
    fn perm_excludes_active_and_aborted() {
        let t = tree_with(&[
            (&act![0], Status::Active),
            (&act![1], Status::Aborted),
            (&act![2], Status::Committed),
        ]);
        let p = t.perm();
        assert!(!p.contains(&act![0]));
        assert!(!p.contains(&act![1]));
        assert!(p.contains(&act![2]));
        assert_eq!(p.len(), 2); // U and act![2]
    }

    #[test]
    fn lemma7_perm_mutually_visible() {
        let t = tree_with(&[
            (&act![0], Status::Committed),
            (&act![0, 0], Status::Committed),
            (&act![1], Status::Committed),
        ]);
        let p = t.perm();
        let vs: Vec<_> = p.vertices().cloned().collect();
        for a in &vs {
            for b in &vs {
                assert!(p.is_visible_to(b, a), "lemma 7 failed: {b} not visible to {a}");
            }
        }
    }

    #[test]
    fn children_and_descendants() {
        let t = tree_with(&[
            (&act![0], Status::Active),
            (&act![0, 0], Status::Active),
            (&act![0, 0, 0], Status::Active),
            (&act![1], Status::Active),
        ]);
        let kids: Vec<_> = t.children_in_tree(&ActionId::root()).cloned().collect();
        assert_eq!(kids, vec![act![0], act![1]]);
        let descs: Vec<_> = t.descendants_in_tree(&act![0]).cloned().collect();
        assert_eq!(descs, vec![act![0], act![0, 0], act![0, 0, 0]]);
    }

    #[test]
    fn le_ordering() {
        let small = tree_with(&[(&act![0], Status::Active)]);
        let big = tree_with(&[(&act![0], Status::Committed), (&act![1], Status::Active)]);
        assert!(small.le(&big));
        assert!(!big.le(&small));
        // Status regressions are not ≤.
        let regressed = tree_with(&[(&act![0], Status::Active)]);
        let committed = tree_with(&[(&act![0], Status::Committed)]);
        assert!(regressed.le(&committed));
        assert!(!committed.le(&regressed));
    }
}
