//! Augmented action trees (paper Section 5): an action tree plus the
//! per-object conflict-resolution order `data_T`, with version-compatibility
//! and the `sibling-data` relation used by Theorem 9.

use crate::action::ActionId;
use crate::object::{fold_updates, ObjectId};
use crate::tree::ActionTree;
use crate::universe::Universe;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// An augmented action tree: `(S, data_T)` where `data_T` totally orders the
/// datasteps of each object.
///
/// We store `data_T` as one sequence per object; the paper's partial order
/// is the union of these per-object total orders (plus reflexive pairs).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct Aat {
    /// The underlying action tree `S`.
    pub tree: ActionTree,
    data: BTreeMap<ObjectId, Vec<ActionId>>,
}

impl Aat {
    /// The trivial AAT: single active vertex `U`, empty data order.
    pub fn trivial() -> Self {
        Aat { tree: ActionTree::trivial(), data: BTreeMap::new() }
    }

    /// Wrap an existing tree with an empty data order.
    pub fn from_tree(tree: ActionTree) -> Self {
        Aat { tree, data: BTreeMap::new() }
    }

    /// The data order for object `x` (earliest first).
    pub fn data_order(&self, x: ObjectId) -> &[ActionId] {
        self.data.get(&x).map_or(&[], Vec::as_slice)
    }

    /// Objects with a non-empty data order.
    pub fn data_objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.data.keys().copied()
    }

    /// Position of `a` in `x`'s data order, if present.
    pub fn data_position(&self, x: ObjectId, a: &ActionId) -> Option<usize> {
        self.data_order(x).iter().position(|b| b == a)
    }

    /// True iff `(B, A) ∈ data_T` with `B ≠ A` (strict data precedence).
    pub fn data_precedes(&self, x: ObjectId, b: &ActionId, a: &ActionId) -> bool {
        match (self.data_position(x, b), self.data_position(x, a)) {
            (Some(i), Some(j)) => i < j,
            _ => false,
        }
    }

    /// Effect (d23): append `A` to the end of `x`'s data order.
    ///
    /// # Panics
    /// If `A` is already in the order (the order is over distinct datasteps).
    pub fn append_datastep(&mut self, x: ObjectId, a: ActionId) {
        let seq = self.data.entry(x).or_default();
        assert!(!seq.contains(&a), "datastep {a} appended twice to {x}");
        seq.push(a);
    }

    /// Insert `A` into `x`'s data order at `index` — used by timestamp
    /// implementations, whose conflict-resolution order is predetermined
    /// rather than arrival-ordered.
    ///
    /// # Panics
    /// If `A` is already in the order or `index` is out of bounds.
    pub fn insert_datastep(&mut self, x: ObjectId, index: usize, a: ActionId) {
        let seq = self.data.entry(x).or_default();
        assert!(!seq.contains(&a), "datastep {a} inserted twice into {x}");
        seq.insert(index, a);
    }

    /// `v-data_T(A)`: the visible strict data-predecessors of datastep `A`
    /// on its object, in `data_T` order.
    pub fn v_data(&self, a: &ActionId, universe: &Universe) -> Vec<ActionId> {
        let x = universe.object_of(a).expect("v-data of a non-access");
        let order = self.data_order(x);
        let Some(pos) = order.iter().position(|b| b == a) else {
            return Vec::new();
        };
        order[..pos].iter().filter(|b| self.tree.is_visible_to(b, a)).cloned().collect()
    }

    /// True iff the AAT is *version-compatible*: every datastep's label is
    /// the result of folding its visible data-predecessors' updates over
    /// `init(x)` (Section 5.2).
    pub fn is_version_compatible(&self, universe: &Universe) -> bool {
        self.version_compatibility_violations(universe).is_empty()
    }

    /// The datasteps whose labels violate version-compatibility.
    pub fn version_compatibility_violations(&self, universe: &Universe) -> Vec<ActionId> {
        let mut bad = Vec::new();
        for (&x, order) in &self.data {
            let init = universe.init_of(x).expect("data order over declared object");
            for a in order {
                let expected = fold_updates(
                    init,
                    self.v_data(a, universe)
                        .iter()
                        .map(|b| universe.update_of(b).expect("datastep is access")),
                );
                if self.tree.label(a) != Some(expected) {
                    bad.push(a.clone());
                }
            }
        }
        bad
    }

    /// The `sibling-data_T` relation: distinct sibling pairs `(A', B')` such
    /// that some datastep below `A'` precedes (in `data_T`) some datastep
    /// below `B'`, restricted to data pairs satisfying `keep`.
    fn sibling_data_edges_filtered(
        &self,
        mut keep: impl FnMut(&ActionId, &ActionId) -> bool,
    ) -> BTreeSet<(ActionId, ActionId)> {
        let mut edges = BTreeSet::new();
        for order in self.data.values() {
            for (i, c) in order.iter().enumerate() {
                for d in &order[i + 1..] {
                    if !keep(c, d) {
                        continue;
                    }
                    let lca = c.lca(d);
                    let a = lca.child_towards(c).expect("datasteps are distinct leaves");
                    let b = lca.child_towards(d).expect("datasteps are distinct leaves");
                    debug_assert_ne!(a, b, "distinct leaves diverge below their lca");
                    edges.insert((a, b));
                }
            }
        }
        edges
    }

    /// The `sibling-data_T` relation of the paper (every data pair counts —
    /// the exclusive-access model treats all accesses as conflicting).
    pub fn sibling_data_edges(&self) -> BTreeSet<(ActionId, ActionId)> {
        self.sibling_data_edges_filtered(|_, _| true)
    }

    /// `sibling-data_T` restricted to *conflicting* pairs (at least one of
    /// the two accesses is a non-read update) — the relation for the full
    /// read/write Moss algorithm, where two reads never conflict and their
    /// relative `data_T` position is an arbitrary logging artifact.
    pub fn rw_sibling_data_edges(&self, universe: &Universe) -> BTreeSet<(ActionId, ActionId)> {
        self.sibling_data_edges_filtered(|c, d| {
            let c_read = universe.update_of(c).is_some_and(|u| u.is_read());
            let d_read = universe.update_of(d).is_some_and(|u| u.is_read());
            !(c_read && d_read)
        })
    }

    /// True iff `sibling-data_T` has a cycle of length greater than one.
    pub fn has_sibling_data_cycle(&self) -> bool {
        Self::edges_have_cycle(&self.sibling_data_edges())
    }

    /// True iff the conflict-restricted relation has a nontrivial cycle.
    pub fn has_rw_sibling_data_cycle(&self, universe: &Universe) -> bool {
        Self::edges_have_cycle(&self.rw_sibling_data_edges(universe))
    }

    fn edges_have_cycle(edges: &BTreeSet<(ActionId, ActionId)>) -> bool {
        let mut adj: BTreeMap<&ActionId, Vec<&ActionId>> = BTreeMap::new();
        for (a, b) in edges.iter() {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default();
        }
        // Iterative three-color DFS.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: BTreeMap<&ActionId, Color> =
            adj.keys().map(|&k| (k, Color::White)).collect();
        let nodes: Vec<&ActionId> = adj.keys().copied().collect();
        for start in nodes {
            if color[start] != Color::White {
                continue;
            }
            // Stack of (node, next-child-index).
            let mut stack: Vec<(&ActionId, usize)> = vec![(start, 0)];
            *color.get_mut(start).unwrap() = Color::Gray;
            while let Some(&(node, idx)) = stack.last() {
                let succs = &adj[node];
                if idx < succs.len() {
                    stack.last_mut().expect("nonempty").1 += 1;
                    let next = succs[idx];
                    match color[next] {
                        Color::Gray => return true,
                        Color::White => {
                            *color.get_mut(next).unwrap() = Color::Gray;
                            stack.push((next, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    *color.get_mut(node).unwrap() = Color::Black;
                    stack.pop();
                }
            }
        }
        false
    }

    /// Theorem 9: data-serializability via the characterization —
    /// version-compatible and no nontrivial `sibling-data` cycle.
    pub fn is_data_serializable(&self, universe: &Universe) -> bool {
        self.is_version_compatible(universe) && !self.has_sibling_data_cycle()
    }

    /// The read/write extension of Theorem 9's sufficient condition:
    /// version-compatible and no cycle in the *conflict-restricted*
    /// `sibling-data` relation.
    ///
    /// When this holds, a serializing sibling order exists: pick any `p`
    /// consistent with the conflict edges; permuting non-conflicting
    /// (read-read) data pairs never changes `result(x, ·)` because reads
    /// are identity updates, so `p` serializes the tree. It is the check
    /// used to audit the full read/write Moss engine, whose logs totally
    /// order read-read pairs only as an artifact of recording.
    pub fn is_rw_data_serializable(&self, universe: &Universe) -> bool {
        self.is_version_compatible(universe) && !self.has_rw_sibling_data_cycle(universe)
    }

    /// The value an access `A` *should* see if it were not an orphan: the
    /// fold of the data-predecessors on `A`'s object that are visible to
    /// `A` and live in the counterfactual tree where `A`'s own aborted
    /// ancestors had not aborted (Goree's "orphans see consistent views"
    /// property, which the paper names as future work in §1/§10).
    ///
    /// For a *live* `A` this coincides with the paper's (d13) expected
    /// value, since by Lemma 6 everything visible to a live action is live.
    /// For orphans it asks that the view "could occur during an execution
    /// in which they are not orphans".
    pub fn counterfactual_expected_value(&self, a: &ActionId, universe: &Universe) -> crate::Value {
        let x = universe.object_of(a).expect("expected value of a non-access");
        let init = universe.init_of(x).expect("declared object");
        // B is live-in-T' iff every aborted ancestor of B is an ancestor
        // of A (those are the ones the counterfactual un-aborts).
        let live_counterfactually = |b: &ActionId| {
            b.ancestors().all(|anc| !self.tree.is_aborted(&anc) || anc.is_ancestor_of(a))
        };
        fold_updates(
            init,
            self.data_order(x)
                .iter()
                .filter(|b| *b != a && self.tree.is_visible_to(b, a) && live_counterfactually(b))
                .map(|b| universe.update_of(b).expect("datastep is access")),
        )
    }

    /// `perm(T)` lifted to AATs: the permanent subtree with the data order
    /// restricted to its datasteps.
    pub fn perm(&self) -> Aat {
        let tree = self.tree.perm();
        let data = self
            .data
            .iter()
            .map(|(&x, order)| {
                (x, order.iter().filter(|a| tree.contains(a)).cloned().collect::<Vec<_>>())
            })
            .filter(|(_, order): &(ObjectId, Vec<ActionId>)| !order.is_empty())
            .collect();
        Aat { tree, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act;
    use crate::object::UpdateFn;
    use crate::universe::UniverseBuilder;

    /// Universe: two top-level actions each with one access to x0.
    fn universe() -> Universe {
        UniverseBuilder::new()
            .object(0, 0)
            .action(act![0])
            .access(act![0, 0], 0, UpdateFn::Add(1))
            .action(act![1])
            .access(act![1, 0], 0, UpdateFn::Mul(2))
            .build()
            .unwrap()
    }

    /// Build the AAT for "act![0,0] then act![1,0]" with correct labels.
    fn serial_aat(u: &Universe) -> Aat {
        let mut t = Aat::trivial();
        t.tree.create(act![0]);
        t.tree.create(act![0, 0]);
        t.tree.set_committed(&act![0, 0]);
        t.tree.set_label(act![0, 0], 0); // sees init
        t.append_datastep(ObjectId(0), act![0, 0]);
        t.tree.set_committed(&act![0]);
        t.tree.create(act![1]);
        t.tree.create(act![1, 0]);
        t.tree.set_committed(&act![1, 0]);
        t.tree.set_label(act![1, 0], 1); // sees 0 + 1
        t.append_datastep(ObjectId(0), act![1, 0]);
        t.tree.set_committed(&act![1]);
        let _ = u;
        t
    }

    #[test]
    fn data_order_bookkeeping() {
        let u = universe();
        let t = serial_aat(&u);
        assert_eq!(t.data_order(ObjectId(0)), &[act![0, 0], act![1, 0]]);
        assert!(t.data_precedes(ObjectId(0), &act![0, 0], &act![1, 0]));
        assert!(!t.data_precedes(ObjectId(0), &act![1, 0], &act![0, 0]));
        assert!(!t.data_precedes(ObjectId(0), &act![0, 0], &act![0, 0]));
        assert_eq!(t.data_position(ObjectId(0), &act![1, 0]), Some(1));
        assert_eq!(t.data_order(ObjectId(9)), &[] as &[ActionId]);
    }

    #[test]
    fn v_data_respects_visibility() {
        let u = universe();
        let t = serial_aat(&u);
        // act![0,0] committed all the way up, so visible to act![1,0].
        assert_eq!(t.v_data(&act![1, 0], &u), vec![act![0, 0]]);
        assert_eq!(t.v_data(&act![0, 0], &u), Vec::<ActionId>::new());
    }

    #[test]
    fn version_compatibility() {
        let u = universe();
        let t = serial_aat(&u);
        assert!(t.is_version_compatible(&u));
        // Corrupt a label.
        let mut bad = t.clone();
        bad.tree.set_label(act![1, 0], 99);
        assert!(!bad.is_version_compatible(&u));
        assert_eq!(bad.version_compatibility_violations(&u), vec![act![1, 0]]);
    }

    #[test]
    fn sibling_data_edges_projected_to_top() {
        let u = universe();
        let t = serial_aat(&u);
        let edges = t.sibling_data_edges();
        assert_eq!(edges.into_iter().collect::<Vec<_>>(), vec![(act![0], act![1])]);
    }

    #[test]
    fn no_cycle_in_serial_order() {
        let u = universe();
        let t = serial_aat(&u);
        assert!(!t.has_sibling_data_cycle());
        assert!(t.is_data_serializable(&u));
    }

    #[test]
    fn cycle_detected_with_two_objects() {
        // A accesses x before B, but B accesses y before A: cycle A⇄B.
        let _u = UniverseBuilder::new()
            .object(0, 0)
            .object(1, 0)
            .action(act![0])
            .access(act![0, 0], 0, UpdateFn::Add(1))
            .access(act![0, 1], 1, UpdateFn::Add(1))
            .action(act![1])
            .access(act![1, 0], 0, UpdateFn::Add(1))
            .access(act![1, 1], 1, UpdateFn::Add(1))
            .build()
            .unwrap();
        let mut t = Aat::trivial();
        for a in [act![0], act![1]] {
            t.tree.create(a);
        }
        for a in [act![0, 0], act![0, 1], act![1, 0], act![1, 1]] {
            t.tree.create(a.clone());
            t.tree.set_committed(&a);
            t.tree.set_label(a, 0);
        }
        t.append_datastep(ObjectId(0), act![0, 0]);
        t.append_datastep(ObjectId(0), act![1, 0]);
        t.append_datastep(ObjectId(1), act![1, 1]);
        t.append_datastep(ObjectId(1), act![0, 1]);
        assert!(t.has_sibling_data_cycle());
    }

    #[test]
    fn nested_cycle_between_subtransaction_siblings() {
        // Cycle between siblings one level down, under a common parent.
        // Universe shape: act![0] with two subtransactions, each reading x0
        // and x1; only the data orders matter for the cycle check.
        let mut t = Aat::trivial();
        t.tree.create(act![0]);
        t.tree.create(act![0, 0]);
        t.tree.create(act![0, 1]);
        for a in [act![0, 0, 0], act![0, 0, 1], act![0, 1, 0], act![0, 1, 1]] {
            t.tree.create(a.clone());
            t.tree.set_committed(&a);
            t.tree.set_label(a, 0);
        }
        t.append_datastep(ObjectId(0), act![0, 0, 0]);
        t.append_datastep(ObjectId(0), act![0, 1, 0]);
        t.append_datastep(ObjectId(1), act![0, 1, 1]);
        t.append_datastep(ObjectId(1), act![0, 0, 1]);
        let edges = t.sibling_data_edges();
        assert!(edges.contains(&(act![0, 0], act![0, 1])));
        assert!(edges.contains(&(act![0, 1], act![0, 0])));
        assert!(t.has_sibling_data_cycle());
    }

    #[test]
    fn perm_restricts_data_order() {
        let u = universe();
        let mut t = serial_aat(&u);
        // Abort a third top-level action with a datastep... instead, abort act![1]
        // retroactively by rebuilding: here we just mark act![1] aborted.
        t.tree.set_aborted(&act![1]);
        let p = t.perm();
        assert!(p.tree.contains(&act![0, 0]));
        assert!(!p.tree.contains(&act![1, 0]));
        assert_eq!(p.data_order(ObjectId(0)), &[act![0, 0]]);
    }

    #[test]
    fn counterfactual_expected_value_cases() {
        // Universe: act0 with children act0.0 (writes 7) and act0.1 (reads);
        // act1 with access act1.0 (reads).
        let u = UniverseBuilder::new()
            .object(0, 1)
            .action(act![0])
            .access(act![0, 0], 0, UpdateFn::Write(7))
            .access(act![0, 1], 0, UpdateFn::Read)
            .action(act![1])
            .access(act![1, 0], 0, UpdateFn::Read)
            .build()
            .unwrap();
        let mut t = Aat::trivial();
        t.tree.create(act![0]);
        t.tree.create(act![0, 0]);
        t.tree.set_committed(&act![0, 0]);
        t.tree.set_label(act![0, 0], 1);
        t.append_datastep(ObjectId(0), act![0, 0]);
        t.tree.create(act![0, 1]);
        t.tree.create(act![1]);
        t.tree.create(act![1, 0]);
        // act0 aborts: act0.1 is now an orphan.
        t.tree.set_aborted(&act![0]);
        // Counterfactually un-aborting act0 makes the committed sibling
        // write visible and live: the orphan should see 7.
        assert_eq!(t.counterfactual_expected_value(&act![0, 1], &u), 7);
        // The unrelated live access act1.0 must NOT see the dead write:
        // its counterfactual doesn't resurrect act0.
        assert_eq!(t.counterfactual_expected_value(&act![1, 0], &u), 1);
    }

    #[test]
    fn counterfactual_matches_d13_for_live_accesses() {
        let u = universe();
        let t = serial_aat(&u);
        // For a live access, the counterfactual fold equals the visible
        // fold (Lemma 6): act1.0 saw 1 (init 0 + Add(1)).
        assert_eq!(t.counterfactual_expected_value(&act![1, 0], &u), 1);
    }

    #[test]
    #[should_panic(expected = "appended twice")]
    fn double_append_panics() {
        let mut t = Aat::trivial();
        t.tree.create(act![0]);
        t.append_datastep(ObjectId(0), act![0]);
        t.append_datastep(ObjectId(0), act![0]);
    }
}
