//! # rnt-model
//!
//! The data-structure layer of the resilient-nested-transactions
//! reproduction (Lynch, *Concurrency Control for Resilient Nested
//! Transactions*, PODS 1983):
//!
//! * [`ActionId`] — the a-priori universal tree of action names (§3.1);
//! * [`Universe`] — the static assignment of accesses to objects and
//!   update functions (§3.1);
//! * [`ActionTree`] — status + labels, visibility, `perm(T)` (§3.2–3.4);
//! * [`Aat`] — augmented action trees with the `data_T` order, `sibling-data`
//!   and the Theorem 9 characterization of data-serializability (§5);
//! * [`serial`] — serializability *by definition* (brute-force over
//!   linearizing sibling orders), the ground truth the characterization is
//!   validated against;
//! * [`ActionSummary`] — status gossip for the distributed level (§9.1);
//! * [`TxEvent`] — the shared event vocabulary of levels 1–4.
//!
//! The algebra levels themselves live in `rnt-spec` (levels 1–2),
//! `rnt-locking` (levels 3–4) and `rnt-distributed` (level 5).
//!
//! ```
//! use rnt_model::{act, Aat, ObjectId, UniverseBuilder, UpdateFn};
//!
//! // Two top-level actions, each with one access to a shared object.
//! let universe = UniverseBuilder::new()
//!     .object(0, 10)
//!     .action(act![0])
//!     .access(act![0, 0], 0, UpdateFn::Add(1))
//!     .action(act![1])
//!     .access(act![1, 0], 0, UpdateFn::Read)
//!     .build()
//!     .unwrap();
//!
//! // An execution where act0 ran (and committed) before act1's read.
//! let mut aat = Aat::trivial();
//! for a in [act![0], act![1]] { aat.tree.create(a); }
//! for (a, label) in [(act![0, 0], 10), (act![1, 0], 11)] {
//!     aat.tree.create(a.clone());
//!     aat.tree.set_committed(&a);
//!     aat.tree.set_label(a.clone(), label);
//!     aat.append_datastep(ObjectId(0), a);
//! }
//! aat.tree.set_committed(&act![0]);
//! aat.tree.set_committed(&act![1]);
//!
//! // Theorem 9's characterization says this is data-serializable.
//! assert!(aat.is_data_serializable(&universe));
//! assert!(aat.perm().is_data_serializable(&universe));
//! ```

#![warn(missing_docs)]

mod aat;
mod action;
mod event;
mod object;
pub mod render;
pub mod serial;
mod summary;
mod tree;
mod universe;

pub use aat::Aat;
pub use action::ActionId;
pub use event::TxEvent;
pub use object::{fold_updates, ObjectId, ObjectSpec, UpdateFn, Value};
pub use summary::ActionSummary;
pub use tree::{ActionTree, Status};
pub use universe::{AccessSpec, Universe, UniverseBuilder, UniverseError};
