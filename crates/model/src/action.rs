//! Action identifiers: the a-priori universal tree of action names.
//!
//! The paper assumes "the actions are configured a priori into a tree
//! representing their nesting relationship, with `U` as the root", and that
//! the *name* of an action "carries within it information which locates that
//! action in this universal tree". We realize this literally: an [`ActionId`]
//! is the path of child indices from the root `U`, so tree relations
//! (`parent`, `lca`, ancestor/descendant tests) are pure functions of the
//! names and need no side tables.

use std::fmt;

/// The name of an action: the path of child indices from the root `U`.
///
/// `U` itself is the empty path. The action at path `[2, 0]` is the first
/// child of the third top-level action.
///
/// Serializes as the dotted path string (`"U"`, `"U.2.0"`), so it can key
/// JSON maps.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionId(Vec<u32>);

impl serde::Serialize for ActionId {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl<'de> serde::Deserialize<'de> for ActionId {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let text = String::deserialize(deserializer)?;
        let mut parts = text.split('.');
        if parts.next() != Some("U") {
            return Err(serde::de::Error::custom("action path must start with 'U'"));
        }
        let path: Result<Vec<u32>, _> = parts.map(str::parse).collect();
        path.map(ActionId).map_err(serde::de::Error::custom)
    }
}

impl ActionId {
    /// The root action `U`, the (virtual) parent of all top-level actions.
    pub fn root() -> Self {
        ActionId(Vec::new())
    }

    /// Construct an action from its path of child indices.
    pub fn from_path(path: impl Into<Vec<u32>>) -> Self {
        ActionId(path.into())
    }

    /// The path of child indices identifying this action.
    pub fn path(&self) -> &[u32] {
        &self.0
    }

    /// True iff this is the root action `U`.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    /// Nesting depth: `U` has depth 0, top-level actions depth 1, and so on.
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// The `index`-th child of this action in the universal tree.
    pub fn child(&self, index: u32) -> Self {
        let mut path = Vec::with_capacity(self.0.len() + 1);
        path.extend_from_slice(&self.0);
        path.push(index);
        ActionId(path)
    }

    /// `parent(A)`; `None` for the root `U`.
    pub fn parent(&self) -> Option<Self> {
        if self.is_root() {
            None
        } else {
            Some(ActionId(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// The proper ancestors of this action, from parent up to (and
    /// including) the root `U`.
    pub fn proper_ancestors(&self) -> impl Iterator<Item = ActionId> + '_ {
        (0..self.0.len()).rev().map(|k| ActionId(self.0[..k].to_vec()))
    }

    /// The ancestors of this action including itself, from itself up to `U`.
    pub fn ancestors(&self) -> impl Iterator<Item = ActionId> + '_ {
        (0..=self.0.len()).rev().map(|k| ActionId(self.0[..k].to_vec()))
    }

    /// True iff `self` is an ancestor of `other` (`other ∈ desc(self)`).
    /// Every action is an ancestor of itself.
    pub fn is_ancestor_of(&self, other: &ActionId) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// True iff `self` is a *proper* ancestor of `other`.
    pub fn is_proper_ancestor_of(&self, other: &ActionId) -> bool {
        other.0.len() > self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// True iff `self` is a descendant of `other` (`self ∈ desc(other)`).
    pub fn is_descendant_of(&self, other: &ActionId) -> bool {
        other.is_ancestor_of(self)
    }

    /// True iff `self` and `other` have the same parent.
    ///
    /// Following the paper's definition of the `siblings` relation this is
    /// reflexive for non-root actions: `(A, A) ∈ siblings`.
    pub fn is_sibling_of(&self, other: &ActionId) -> bool {
        !self.is_root()
            && !other.is_root()
            && self.0[..self.0.len() - 1] == other.0[..other.0.len() - 1]
    }

    /// `lca(A, B)`: the least common ancestor of `self` and `other`.
    pub fn lca(&self, other: &ActionId) -> ActionId {
        let common = self.0.iter().zip(other.0.iter()).take_while(|(a, b)| a == b).count();
        ActionId(self.0[..common].to_vec())
    }

    /// The child of `self` that lies on the path towards the proper
    /// descendant `desc`, or `None` if `desc` is not a proper descendant.
    ///
    /// This is the projection used to define the `sibling-data` relation:
    /// for a datastep `C` below sibling-group member `A'`, `A'` is
    /// `lca.child_towards(C)`.
    pub fn child_towards(&self, desc: &ActionId) -> Option<ActionId> {
        if self.is_proper_ancestor_of(desc) {
            Some(ActionId(desc.0[..self.0.len() + 1].to_vec()))
        } else {
            None
        }
    }
}

impl fmt::Debug for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            write!(f, "U")
        } else {
            write!(f, "U")?;
            for seg in &self.0 {
                write!(f, ".{seg}")?;
            }
            Ok(())
        }
    }
}

/// Convenience constructor: `act![0, 1]` is the action at path `[0, 1]`.
#[macro_export]
macro_rules! act {
    () => { $crate::ActionId::root() };
    ($($seg:expr),+ $(,)?) => { $crate::ActionId::from_path(vec![$($seg as u32),+]) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_properties() {
        let u = ActionId::root();
        assert!(u.is_root());
        assert_eq!(u.depth(), 0);
        assert_eq!(u.parent(), None);
        assert!(u.is_ancestor_of(&u));
        assert!(!u.is_proper_ancestor_of(&u));
    }

    #[test]
    fn child_and_parent_roundtrip() {
        let a = ActionId::root().child(3).child(1);
        assert_eq!(a.path(), &[3, 1]);
        assert_eq!(a.parent().unwrap().path(), &[3]);
        assert_eq!(a.parent().unwrap().parent().unwrap(), ActionId::root());
    }

    #[test]
    fn ancestor_relations() {
        let a = act![0];
        let b = act![0, 1];
        let c = act![0, 1, 2];
        assert!(a.is_proper_ancestor_of(&c));
        assert!(a.is_ancestor_of(&a));
        assert!(c.is_descendant_of(&a));
        assert!(!c.is_ancestor_of(&a));
        assert!(b.is_proper_ancestor_of(&c));
        assert!(!b.is_proper_ancestor_of(&b));
    }

    #[test]
    fn lca_cases() {
        assert_eq!(act![0, 1].lca(&act![0, 2]), act![0]);
        assert_eq!(act![0, 1].lca(&act![1, 2]), ActionId::root());
        assert_eq!(act![0, 1].lca(&act![0, 1, 5]), act![0, 1]);
        assert_eq!(act![0].lca(&act![0]), act![0]);
    }

    #[test]
    fn lca_identity_law() {
        // Lemma 5b relies on lca(A, B) = lca(A, lca(A, B)).
        let a = act![0, 1, 2];
        let b = act![0, 3];
        let l = a.lca(&b);
        assert_eq!(a.lca(&l), l);
    }

    #[test]
    fn siblings() {
        assert!(act![0, 1].is_sibling_of(&act![0, 2]));
        assert!(act![0, 1].is_sibling_of(&act![0, 1]));
        assert!(!act![0, 1].is_sibling_of(&act![1, 1]));
        assert!(!ActionId::root().is_sibling_of(&act![0]));
    }

    #[test]
    fn child_towards() {
        let u = ActionId::root();
        let c = act![2, 0, 1];
        assert_eq!(u.child_towards(&c), Some(act![2]));
        assert_eq!(act![2].child_towards(&c), Some(act![2, 0]));
        assert_eq!(act![2, 0, 1].child_towards(&c), None);
        assert_eq!(act![3].child_towards(&c), None);
    }

    #[test]
    fn ancestors_iteration() {
        let a = act![1, 2];
        let ancs: Vec<_> = a.ancestors().collect();
        assert_eq!(ancs, vec![act![1, 2], act![1], ActionId::root()]);
        let proper: Vec<_> = a.proper_ancestors().collect();
        assert_eq!(proper, vec![act![1], ActionId::root()]);
    }

    #[test]
    fn display() {
        assert_eq!(ActionId::root().to_string(), "U");
        assert_eq!(act![0, 3].to_string(), "U.0.3");
    }
}
