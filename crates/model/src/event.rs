//! The shared event vocabulary of algebra levels 1–4.
//!
//! The paper gives the four levels event sets "designated by the same
//! names"; sharing one Rust type makes the interpretation mappings between
//! adjacent levels the identity on the common events, exactly as in the
//! paper. Levels 1 and 2 simply have an empty domain for the lock events
//! (they are not in their Π), and the mappings h′/h″ send lock events to Λ
//! where the paper does.

use crate::action::ActionId;
use crate::object::{ObjectId, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An event of the (centralized) nested-transaction algebras.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TxEvent {
    /// `create_A`: activate action `A`.
    Create(ActionId),
    /// `commit_A`: commit a non-access action to its parent.
    Commit(ActionId),
    /// `abort_A`: abort an active action.
    Abort(ActionId),
    /// `perform_{A,u}`: perform access `A`, seeing value `u`.
    Perform(ActionId, Value),
    /// `release-lock_{A,x}`: a committed action passes its lock on `x` to
    /// its parent (levels 3–5 only).
    ReleaseLock(ActionId, ObjectId),
    /// `lose-lock_{A,x}`: a dead action's lock on `x` is discarded
    /// (levels 3–5 only).
    LoseLock(ActionId, ObjectId),
}

impl TxEvent {
    /// The action the event concerns.
    pub fn action(&self) -> &ActionId {
        match self {
            TxEvent::Create(a)
            | TxEvent::Commit(a)
            | TxEvent::Abort(a)
            | TxEvent::Perform(a, _)
            | TxEvent::ReleaseLock(a, _)
            | TxEvent::LoseLock(a, _) => a,
        }
    }

    /// True iff this is one of the two lock-manipulation events.
    pub fn is_lock_event(&self) -> bool {
        matches!(self, TxEvent::ReleaseLock(..) | TxEvent::LoseLock(..))
    }
}

impl fmt::Display for TxEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxEvent::Create(a) => write!(f, "create({a})"),
            TxEvent::Commit(a) => write!(f, "commit({a})"),
            TxEvent::Abort(a) => write!(f, "abort({a})"),
            TxEvent::Perform(a, u) => write!(f, "perform({a}, {u})"),
            TxEvent::ReleaseLock(a, x) => write!(f, "release-lock({a}, {x})"),
            TxEvent::LoseLock(a, x) => write!(f, "lose-lock({a}, {x})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act;

    #[test]
    fn action_projection() {
        let a = act![1, 2];
        for e in [
            TxEvent::Create(a.clone()),
            TxEvent::Commit(a.clone()),
            TxEvent::Abort(a.clone()),
            TxEvent::Perform(a.clone(), 7),
            TxEvent::ReleaseLock(a.clone(), ObjectId(0)),
            TxEvent::LoseLock(a.clone(), ObjectId(0)),
        ] {
            assert_eq!(e.action(), &a);
        }
    }

    #[test]
    fn lock_event_classification() {
        assert!(TxEvent::ReleaseLock(act![0], ObjectId(1)).is_lock_event());
        assert!(TxEvent::LoseLock(act![0], ObjectId(1)).is_lock_event());
        assert!(!TxEvent::Perform(act![0], 0).is_lock_event());
        assert!(!TxEvent::Create(act![0]).is_lock_event());
    }

    #[test]
    fn display_forms() {
        assert_eq!(TxEvent::Create(act![0]).to_string(), "create(U.0)");
        assert_eq!(TxEvent::Perform(act![0, 1], 3).to_string(), "perform(U.0.1, 3)");
        assert_eq!(TxEvent::ReleaseLock(act![0], ObjectId(2)).to_string(), "release-lock(U.0, x2)");
    }
}
