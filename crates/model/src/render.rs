//! Human-readable rendering of action trees and AATs — used by
//! counterexample output, examples and debugging sessions.

use crate::action::ActionId;
use crate::tree::{ActionTree, Status};
use crate::universe::Universe;
use crate::Aat;
use std::fmt::Write;

fn status_glyph(s: Status) -> &'static str {
    match s {
        Status::Active => "…",
        Status::Committed => "✓",
        Status::Aborted => "✗",
    }
}

/// Render a tree as an indented outline, statuses as glyphs
/// (`…` active, `✓` committed, `✗` aborted), labels attached to datasteps.
pub fn render_tree(tree: &ActionTree, universe: Option<&Universe>) -> String {
    let mut out = String::new();
    render_subtree(tree, universe, &ActionId::root(), 0, &mut out);
    out
}

fn render_subtree(
    tree: &ActionTree,
    universe: Option<&Universe>,
    node: &ActionId,
    depth: usize,
    out: &mut String,
) {
    let status = tree.status(node).expect("render of absent vertex");
    let indent = "  ".repeat(depth);
    write!(out, "{indent}{} {node}", status_glyph(status)).expect("string write");
    if let Some(u) = universe {
        if let Some(spec) = u.access(node) {
            write!(out, " [{} {}]", spec.object, spec.update).expect("string write");
        }
    }
    if let Some(label) = tree.label(node) {
        write!(out, " saw {label}").expect("string write");
    }
    out.push('\n');
    let children: Vec<ActionId> = tree.children_in_tree(node).cloned().collect();
    for child in children {
        render_subtree(tree, universe, &child, depth + 1, out);
    }
}

/// Render an AAT: the tree plus the per-object data orders.
pub fn render_aat(aat: &Aat, universe: Option<&Universe>) -> String {
    let mut out = render_tree(&aat.tree, universe);
    for x in aat.data_objects() {
        let order: Vec<String> = aat.data_order(x).iter().map(|a| a.to_string()).collect();
        writeln!(out, "data({x}): {}", order.join(" ≺ ")).expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act;
    use crate::object::{ObjectId, UpdateFn};
    use crate::universe::UniverseBuilder;

    #[test]
    fn renders_statuses_and_labels() {
        let u = UniverseBuilder::new()
            .object(0, 1)
            .action(act![0])
            .access(act![0, 0], 0, UpdateFn::Add(2))
            .action(act![1])
            .build()
            .unwrap();
        let mut aat = Aat::trivial();
        aat.tree.create(act![0]);
        aat.tree.create(act![0, 0]);
        aat.tree.set_committed(&act![0, 0]);
        aat.tree.set_label(act![0, 0], 1);
        aat.append_datastep(ObjectId(0), act![0, 0]);
        aat.tree.create(act![1]);
        aat.tree.set_aborted(&act![1]);
        let s = render_aat(&aat, Some(&u));
        assert!(s.contains("… U\n"), "root active:\n{s}");
        assert!(s.contains("✓ U.0.0 [x0 add(2)] saw 1"), "labelled access:\n{s}");
        assert!(s.contains("✗ U.1"), "aborted action:\n{s}");
        assert!(s.contains("data(x0): U.0.0"), "data order:\n{s}");
        // Indentation reflects depth.
        assert!(s.contains("\n  … U.0\n    ✓ U.0.0"), "indentation:\n{s}");
    }

    #[test]
    fn renders_without_universe() {
        let tree = ActionTree::trivial();
        assert_eq!(render_tree(&tree, None), "… U\n");
    }
}
