//! Data objects, values and per-access update functions.
//!
//! The paper models each access `A` as carrying a fixed total function
//! `update(A) : values(object(A)) → values(object(A))`. Reads are accesses
//! whose update is the identity; writes are accesses whose update is a
//! constant function. We provide a small closed family of deterministic
//! update functions ([`UpdateFn`]) rich enough that distinct interleavings
//! of non-commuting accesses are observably different — which is what makes
//! our serializability checks discriminating.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The value domain for all objects.
///
/// The paper allows each object an arbitrary value set `values(x)`; a single
/// integer domain suffices for every construction in the paper (all that is
/// ever required of values is that update functions compose and that
/// equality is decidable).
pub type Value = i64;

/// Identifier for a data object.
///
/// Serializes as the string `"x<n>"` so it can key JSON maps.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl serde::Serialize for ObjectId {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl<'de> serde::Deserialize<'de> for ObjectId {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let text = String::deserialize(deserializer)?;
        text.strip_prefix('x')
            .ok_or_else(|| serde::de::Error::custom("object id must look like 'x0'"))?
            .parse()
            .map(ObjectId)
            .map_err(serde::de::Error::custom)
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A deterministic total function `Value → Value`, the `update(A)` of an
/// access.
///
/// * [`UpdateFn::Read`] is the identity (the paper's "read access").
/// * [`UpdateFn::Write`] is a constant function (the paper's "write access").
/// * The arithmetic variants are genuine read-modify-write accesses; `Add`
///   commutes with itself but not with `Write`, and `Mul`/`Xor` do not
///   commute with `Add`, so serialization order is observable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum UpdateFn {
    /// Identity: a read access.
    Read,
    /// Constant: a (blind) write access.
    Write(Value),
    /// Wrapping addition of a constant.
    Add(Value),
    /// Wrapping multiplication by a constant.
    Mul(Value),
    /// Bitwise xor with a constant.
    Xor(Value),
    /// Maximum with a constant.
    Max(Value),
}

impl UpdateFn {
    /// Apply the function to a value.
    pub fn apply(&self, v: Value) -> Value {
        match *self {
            UpdateFn::Read => v,
            UpdateFn::Write(c) => c,
            UpdateFn::Add(c) => v.wrapping_add(c),
            UpdateFn::Mul(c) => v.wrapping_mul(c),
            UpdateFn::Xor(c) => v ^ c,
            UpdateFn::Max(c) => v.max(c),
        }
    }

    /// True iff the function is the identity (a pure read).
    pub fn is_read(&self) -> bool {
        matches!(self, UpdateFn::Read)
    }
}

impl fmt::Display for UpdateFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            UpdateFn::Read => write!(f, "read"),
            UpdateFn::Write(c) => write!(f, "write({c})"),
            UpdateFn::Add(c) => write!(f, "add({c})"),
            UpdateFn::Mul(c) => write!(f, "mul({c})"),
            UpdateFn::Xor(c) => write!(f, "xor({c})"),
            UpdateFn::Max(c) => write!(f, "max({c})"),
        }
    }
}

/// Static description of one data object: its identifier and initial value
/// `init(x)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct ObjectSpec {
    /// The object's identifier.
    pub id: ObjectId,
    /// The distinguished initial value `init(x)`.
    pub init: Value,
}

/// Fold a sequence of update functions over an initial value.
///
/// This is the paper's `result(x, s)` specialized to a pre-projected
/// sequence: callers are responsible for passing only the updates of
/// accesses to `x`, in order.
pub fn fold_updates(init: Value, updates: impl IntoIterator<Item = UpdateFn>) -> Value {
    updates.into_iter().fold(init, |v, u| u.apply(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_is_identity() {
        for v in [-5, 0, 7, i64::MAX] {
            assert_eq!(UpdateFn::Read.apply(v), v);
        }
        assert!(UpdateFn::Read.is_read());
        assert!(!UpdateFn::Write(0).is_read());
    }

    #[test]
    fn write_is_constant() {
        assert_eq!(UpdateFn::Write(42).apply(0), 42);
        assert_eq!(UpdateFn::Write(42).apply(-1), 42);
    }

    #[test]
    fn arithmetic_updates() {
        assert_eq!(UpdateFn::Add(3).apply(4), 7);
        assert_eq!(UpdateFn::Mul(3).apply(4), 12);
        assert_eq!(UpdateFn::Xor(0b101).apply(0b011), 0b110);
        assert_eq!(UpdateFn::Max(10).apply(4), 10);
        assert_eq!(UpdateFn::Max(10).apply(40), 40);
    }

    #[test]
    fn wrapping_semantics() {
        assert_eq!(UpdateFn::Add(1).apply(i64::MAX), i64::MIN);
        assert_eq!(UpdateFn::Mul(2).apply(i64::MAX), -2);
    }

    #[test]
    fn fold_is_left_to_right() {
        // (0 + 5) * 3 = 15, not 0 + (5 * 3).
        let out = fold_updates(0, [UpdateFn::Add(5), UpdateFn::Mul(3)]);
        assert_eq!(out, 15);
        let out = fold_updates(0, [UpdateFn::Mul(3), UpdateFn::Add(5)]);
        assert_eq!(out, 5);
    }

    #[test]
    fn fold_empty_is_init() {
        assert_eq!(fold_updates(9, []), 9);
    }

    #[test]
    fn noncommutativity_is_observable() {
        // Two orders of {Add(1), Mul(2)} from 1 give 4 vs 3 — the property
        // serializability checks rely on.
        let a = fold_updates(1, [UpdateFn::Add(1), UpdateFn::Mul(2)]);
        let b = fold_updates(1, [UpdateFn::Mul(2), UpdateFn::Add(1)]);
        assert_ne!(a, b);
    }
}
