//! Action summaries (paper Section 9.1): partial knowledge of the latest
//! status of transactions, used as node-local state and message payloads in
//! the distributed algebra.
//!
//! Unlike an action tree, a summary's vertex set is *not* required to be
//! parent-closed, and there are no labels — it is pure status gossip.

use crate::action::ActionId;
use crate::tree::Status;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An action summary: a finite status map over actions.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct ActionSummary {
    status: BTreeMap<ActionId, Status>,
}

impl ActionSummary {
    /// The trivial summary: no vertices.
    pub fn trivial() -> Self {
        Self::default()
    }

    /// Build a summary from status entries.
    pub fn from_entries(entries: impl IntoIterator<Item = (ActionId, Status)>) -> Self {
        ActionSummary { status: entries.into_iter().collect() }
    }

    /// A singleton summary recording one action's status.
    pub fn singleton(a: ActionId, s: Status) -> Self {
        ActionSummary { status: BTreeMap::from([(a, s)]) }
    }

    /// True iff the summary has no vertices.
    pub fn is_empty(&self) -> bool {
        self.status.is_empty()
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.status.len()
    }

    /// True iff `A` is a vertex of the summary.
    pub fn contains(&self, a: &ActionId) -> bool {
        self.status.contains_key(a)
    }

    /// The status of `A`, if known.
    pub fn status(&self, a: &ActionId) -> Option<Status> {
        self.status.get(a).copied()
    }

    /// True iff `A` is known active.
    pub fn is_active(&self, a: &ActionId) -> bool {
        self.status(a) == Some(Status::Active)
    }

    /// True iff `A` is known committed.
    pub fn is_committed(&self, a: &ActionId) -> bool {
        self.status(a) == Some(Status::Committed)
    }

    /// True iff `A` is known aborted.
    pub fn is_aborted(&self, a: &ActionId) -> bool {
        self.status(a) == Some(Status::Aborted)
    }

    /// True iff `A` is known done (committed or aborted).
    pub fn is_done(&self, a: &ActionId) -> bool {
        matches!(self.status(a), Some(Status::Committed | Status::Aborted))
    }

    /// All vertices with status, in name order.
    pub fn entries(&self) -> impl Iterator<Item = (&ActionId, Status)> + '_ {
        self.status.iter().map(|(a, &s)| (a, s))
    }

    /// Set or overwrite the status of `A`.
    pub fn set(&mut self, a: ActionId, s: Status) {
        self.status.insert(a, s);
    }

    /// `self ≤ other` (Section 9.1): vertex, committed and aborted sets are
    /// contained component-wise.
    pub fn le(&self, other: &ActionSummary) -> bool {
        self.status.iter().all(|(a, &s)| match (s, other.status(a)) {
            (_, None) => false,
            (Status::Active, Some(_)) => true,
            (Status::Committed, Some(os)) => os == Status::Committed,
            (Status::Aborted, Some(os)) => os == Status::Aborted,
        })
    }

    /// `self ∪ other`: component-wise union. Done statuses win over active
    /// (an action never leaves `done`, so the union of consistent summaries
    /// is well-defined; for inconsistent inputs the *other* operand's done
    /// status wins deterministically).
    pub fn union(&self, other: &ActionSummary) -> ActionSummary {
        let mut out = self.clone();
        out.union_in_place(other);
        out
    }

    /// In-place version of [`ActionSummary::union`].
    pub fn union_in_place(&mut self, other: &ActionSummary) {
        for (a, &s) in &other.status {
            match self.status.get(a) {
                Some(Status::Committed | Status::Aborted) if s == Status::Active => {}
                _ => {
                    self.status.insert(a.clone(), s);
                }
            }
        }
    }

    /// True iff `A` is dead according to this summary: some ancestor is
    /// known aborted.
    pub fn knows_dead(&self, a: &ActionId) -> bool {
        a.ancestors().any(|anc| self.is_aborted(&anc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act;

    #[test]
    fn trivial_and_singleton() {
        assert!(ActionSummary::trivial().is_empty());
        let s = ActionSummary::singleton(act![0], Status::Active);
        assert_eq!(s.len(), 1);
        assert!(s.is_active(&act![0]));
        assert!(!s.contains(&act![1]));
    }

    #[test]
    fn not_parent_closed() {
        // A summary may know about a deep action without its ancestors.
        let s = ActionSummary::singleton(act![3, 1, 4], Status::Committed);
        assert!(s.contains(&act![3, 1, 4]));
        assert!(!s.contains(&act![3]));
    }

    #[test]
    fn le_is_componentwise() {
        let small = ActionSummary::from_entries([(act![0], Status::Active)]);
        let big =
            ActionSummary::from_entries([(act![0], Status::Committed), (act![1], Status::Aborted)]);
        assert!(small.le(&big));
        assert!(!big.le(&small));
        assert!(ActionSummary::trivial().le(&small));
        // aborted ≤ requires aborted on the right.
        let ab = ActionSummary::from_entries([(act![1], Status::Aborted)]);
        let cm = ActionSummary::from_entries([(act![1], Status::Committed)]);
        assert!(!ab.le(&cm));
    }

    #[test]
    fn union_prefers_done() {
        let a = ActionSummary::from_entries([(act![0], Status::Committed)]);
        let b = ActionSummary::from_entries([(act![0], Status::Active), (act![1], Status::Active)]);
        let u = a.union(&b);
        assert!(u.is_committed(&act![0]), "done must not regress to active");
        assert!(u.is_active(&act![1]));
        let u2 = b.union(&a);
        assert!(u2.is_committed(&act![0]));
    }

    #[test]
    fn union_upper_bound_law() {
        let a =
            ActionSummary::from_entries([(act![0], Status::Active), (act![2], Status::Aborted)]);
        let b =
            ActionSummary::from_entries([(act![0], Status::Committed), (act![1], Status::Active)]);
        let u = a.union(&b);
        assert!(a.le(&u));
        assert!(b.le(&u));
    }

    #[test]
    fn knows_dead_walks_ancestors() {
        let s = ActionSummary::from_entries([(act![0], Status::Aborted)]);
        assert!(s.knows_dead(&act![0, 1, 2]));
        assert!(s.knows_dead(&act![0]));
        assert!(!s.knows_dead(&act![1]));
    }

    #[test]
    fn set_overwrites() {
        let mut s = ActionSummary::trivial();
        s.set(act![0], Status::Active);
        s.set(act![0], Status::Committed);
        assert!(s.is_committed(&act![0]));
        assert!(s.is_done(&act![0]));
    }
}
