//! The action universe: the finite fragment of the paper's a-priori
//! configuration that a given execution can draw from.
//!
//! The paper fixes, before any execution, (i) the universal tree of action
//! names, (ii) which actions are *accesses* (exactly the leaves), and
//! (iii) for each access its object and update function. A [`Universe`]
//! declares a finite, parent-closed set of candidate actions together with
//! that static data. Algebra levels consult the universe both to validate
//! events (is `A` an access? to which object?) and to enumerate candidate
//! events during state-space exploration.

use crate::action::ActionId;
use crate::object::{ObjectId, ObjectSpec, UpdateFn, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The static role of an access: its object and update function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct AccessSpec {
    /// `object(A)`.
    pub object: ObjectId,
    /// `update(A)`.
    pub update: UpdateFn,
}

/// Errors detected while validating a universe definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UniverseError {
    /// An action was declared whose parent is not declared.
    MissingParent(ActionId),
    /// The root `U` was declared as an access.
    RootIsAccess,
    /// An access has declared children (accesses must be leaves).
    AccessHasChildren(ActionId),
    /// An access refers to an undeclared object.
    UnknownObject(ActionId, ObjectId),
    /// The same action was declared twice.
    DuplicateAction(ActionId),
    /// The same object was declared twice.
    DuplicateObject(ObjectId),
}

impl std::fmt::Display for UniverseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UniverseError::MissingParent(a) => write!(f, "action {a} declared without its parent"),
            UniverseError::RootIsAccess => write!(f, "the root U may not be an access"),
            UniverseError::AccessHasChildren(a) => write!(f, "access {a} has declared children"),
            UniverseError::UnknownObject(a, x) => {
                write!(f, "access {a} refers to undeclared object {x}")
            }
            UniverseError::DuplicateAction(a) => write!(f, "action {a} declared twice"),
            UniverseError::DuplicateObject(x) => write!(f, "object {x} declared twice"),
        }
    }
}

impl std::error::Error for UniverseError {}

/// A finite, validated action universe.
///
/// Non-access declared actions may gain children; declared accesses are
/// leaves. The root `U` is always implicitly declared.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Universe {
    objects: BTreeMap<ObjectId, Value>,
    /// Every declared non-root action; `None` marks a non-access.
    actions: BTreeMap<ActionId, Option<AccessSpec>>,
    /// Children of each declared action (including `U`), precomputed.
    children: BTreeMap<ActionId, Vec<ActionId>>,
}

impl Universe {
    /// Validate and build a universe from object and action declarations.
    pub fn new(
        objects: impl IntoIterator<Item = ObjectSpec>,
        actions: impl IntoIterator<Item = (ActionId, Option<AccessSpec>)>,
    ) -> Result<Self, UniverseError> {
        let mut obj_map = BTreeMap::new();
        for spec in objects {
            if obj_map.insert(spec.id, spec.init).is_some() {
                return Err(UniverseError::DuplicateObject(spec.id));
            }
        }
        let mut act_map: BTreeMap<ActionId, Option<AccessSpec>> = BTreeMap::new();
        for (id, access) in actions {
            if id.is_root() {
                if access.is_some() {
                    return Err(UniverseError::RootIsAccess);
                }
                continue; // U is implicit
            }
            if act_map.insert(id.clone(), access).is_some() {
                return Err(UniverseError::DuplicateAction(id));
            }
        }
        let mut children: BTreeMap<ActionId, Vec<ActionId>> = BTreeMap::new();
        children.insert(ActionId::root(), Vec::new());
        for id in act_map.keys() {
            children.entry(id.clone()).or_default();
        }
        for (id, access) in &act_map {
            let parent = id.parent().expect("non-root action has a parent");
            if !parent.is_root() {
                match act_map.get(&parent) {
                    None => return Err(UniverseError::MissingParent(id.clone())),
                    Some(Some(_)) => return Err(UniverseError::AccessHasChildren(parent)),
                    Some(None) => {}
                }
            }
            if let Some(spec) = access {
                if !obj_map.contains_key(&spec.object) {
                    return Err(UniverseError::UnknownObject(id.clone(), spec.object));
                }
            }
            children.get_mut(&parent).expect("parent registered").push(id.clone());
        }
        for (id, access) in &act_map {
            if access.is_some() && !children.get(id).is_none_or(Vec::is_empty) {
                return Err(UniverseError::AccessHasChildren(id.clone()));
            }
        }
        Ok(Universe { objects: obj_map, actions: act_map, children })
    }

    /// True iff `A` is declared (the root is always declared).
    pub fn contains(&self, a: &ActionId) -> bool {
        a.is_root() || self.actions.contains_key(a)
    }

    /// True iff `A` is a declared access.
    pub fn is_access(&self, a: &ActionId) -> bool {
        matches!(self.actions.get(a), Some(Some(_)))
    }

    /// The access specification of `A`, if `A` is an access.
    pub fn access(&self, a: &ActionId) -> Option<&AccessSpec> {
        self.actions.get(a).and_then(|s| s.as_ref())
    }

    /// `object(A)` for an access `A`.
    pub fn object_of(&self, a: &ActionId) -> Option<ObjectId> {
        self.access(a).map(|s| s.object)
    }

    /// `update(A)` for an access `A`.
    pub fn update_of(&self, a: &ActionId) -> Option<UpdateFn> {
        self.access(a).map(|s| s.update)
    }

    /// `init(x)` for a declared object.
    pub fn init_of(&self, x: ObjectId) -> Option<Value> {
        self.objects.get(&x).copied()
    }

    /// All declared objects with their initial values.
    pub fn objects(&self) -> impl Iterator<Item = ObjectSpec> + '_ {
        self.objects.iter().map(|(&id, &init)| ObjectSpec { id, init })
    }

    /// Number of declared objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// All declared non-root actions, in name order.
    pub fn actions(&self) -> impl Iterator<Item = &ActionId> + '_ {
        self.actions.keys()
    }

    /// All declared accesses with their specs, in name order.
    pub fn accesses(&self) -> impl Iterator<Item = (&ActionId, &AccessSpec)> + '_ {
        self.actions.iter().filter_map(|(id, s)| s.as_ref().map(|s| (id, s)))
    }

    /// Number of declared non-root actions.
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }

    /// Declared children of `A` (empty for accesses and undeclared actions).
    pub fn children_of(&self, a: &ActionId) -> &[ActionId] {
        self.children.get(a).map_or(&[], Vec::as_slice)
    }
}

/// Fluent builder for [`Universe`] definitions used throughout tests,
/// examples and experiments.
#[derive(Clone, Debug, Default)]
pub struct UniverseBuilder {
    objects: Vec<ObjectSpec>,
    actions: Vec<(ActionId, Option<AccessSpec>)>,
}

impl UniverseBuilder {
    /// Start an empty universe definition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare an object with an initial value.
    pub fn object(mut self, id: u32, init: Value) -> Self {
        self.objects.push(ObjectSpec { id: ObjectId(id), init });
        self
    }

    /// Declare a non-access (inner) action.
    pub fn action(mut self, id: ActionId) -> Self {
        self.actions.push((id, None));
        self
    }

    /// Declare an access to `object` with the given update function.
    pub fn access(mut self, id: ActionId, object: u32, update: UpdateFn) -> Self {
        self.actions.push((id, Some(AccessSpec { object: ObjectId(object), update })));
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<Universe, UniverseError> {
        Universe::new(self.objects, self.actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act;

    fn small() -> Universe {
        UniverseBuilder::new()
            .object(0, 0)
            .object(1, 10)
            .action(act![0])
            .access(act![0, 0], 0, UpdateFn::Add(1))
            .access(act![0, 1], 1, UpdateFn::Read)
            .action(act![1])
            .access(act![1, 0], 0, UpdateFn::Write(5))
            .build()
            .unwrap()
    }

    #[test]
    fn basic_queries() {
        let u = small();
        assert!(u.contains(&ActionId::root()));
        assert!(u.contains(&act![0, 0]));
        assert!(!u.contains(&act![2]));
        assert!(u.is_access(&act![0, 0]));
        assert!(!u.is_access(&act![0]));
        assert_eq!(u.object_of(&act![0, 0]), Some(ObjectId(0)));
        assert_eq!(u.update_of(&act![1, 0]), Some(UpdateFn::Write(5)));
        assert_eq!(u.init_of(ObjectId(1)), Some(10));
        assert_eq!(u.init_of(ObjectId(7)), None);
        assert_eq!(u.action_count(), 5);
        assert_eq!(u.object_count(), 2);
    }

    #[test]
    fn children_precomputed() {
        let u = small();
        assert_eq!(u.children_of(&ActionId::root()), &[act![0], act![1]]);
        assert_eq!(u.children_of(&act![0]), &[act![0, 0], act![0, 1]]);
        assert!(u.children_of(&act![0, 0]).is_empty());
    }

    #[test]
    fn rejects_missing_parent() {
        let err = UniverseBuilder::new().action(act![0, 0]).build().unwrap_err();
        assert_eq!(err, UniverseError::MissingParent(act![0, 0]));
    }

    #[test]
    fn rejects_access_with_children() {
        let err = UniverseBuilder::new()
            .object(0, 0)
            .access(act![0], 0, UpdateFn::Read)
            .action(act![0, 0])
            .build()
            .unwrap_err();
        assert_eq!(err, UniverseError::AccessHasChildren(act![0]));
    }

    #[test]
    fn rejects_unknown_object() {
        let err = UniverseBuilder::new().access(act![0], 9, UpdateFn::Read).build().unwrap_err();
        assert_eq!(err, UniverseError::UnknownObject(act![0], ObjectId(9)));
    }

    #[test]
    fn rejects_duplicates() {
        let err = UniverseBuilder::new().action(act![0]).action(act![0]).build().unwrap_err();
        assert_eq!(err, UniverseError::DuplicateAction(act![0]));
        let err = UniverseBuilder::new().object(0, 0).object(0, 1).build().unwrap_err();
        assert_eq!(err, UniverseError::DuplicateObject(ObjectId(0)));
    }

    #[test]
    fn access_has_children_detected_after_the_fact() {
        // Declare the child first, then the parent as an access.
        let err = UniverseBuilder::new()
            .object(0, 0)
            .action(act![0])
            .access(act![0, 0], 0, UpdateFn::Read)
            .access(act![0], 0, UpdateFn::Read)
            .build()
            .unwrap_err();
        // Either ordering of detection is acceptable; both name act![0].
        match err {
            UniverseError::AccessHasChildren(a) | UniverseError::DuplicateAction(a) => {
                assert_eq!(a, act![0])
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn root_not_access() {
        let err = Universe::new(
            [],
            [(ActionId::root(), Some(AccessSpec { object: ObjectId(0), update: UpdateFn::Read }))],
        )
        .unwrap_err();
        assert_eq!(err, UniverseError::RootIsAccess);
    }
}
