//! Property-based tests for the action-name algebra: the tree laws that
//! every later proof step (visibility, sibling-data projection, locality)
//! silently relies on.

use proptest::prelude::*;
use rnt_model::ActionId;

fn action_strategy() -> impl Strategy<Value = ActionId> {
    prop::collection::vec(0u32..4, 0..5).prop_map(ActionId::from_path)
}

proptest! {
    #[test]
    fn parent_child_roundtrip(a in action_strategy(), i in 0u32..8) {
        let c = a.child(i);
        prop_assert_eq!(c.parent().unwrap(), a.clone());
        prop_assert_eq!(c.depth(), a.depth() + 1);
        prop_assert!(a.is_proper_ancestor_of(&c));
    }

    #[test]
    fn lca_is_commutative(a in action_strategy(), b in action_strategy()) {
        prop_assert_eq!(a.lca(&b), b.lca(&a));
    }

    #[test]
    fn lca_is_common_ancestor_and_deepest(a in action_strategy(), b in action_strategy()) {
        let l = a.lca(&b);
        prop_assert!(l.is_ancestor_of(&a));
        prop_assert!(l.is_ancestor_of(&b));
        // No deeper common ancestor: the child of l towards a (if any)
        // must not be an ancestor of b, unless a is an ancestor of b or
        // vice versa (then l equals the shallower one).
        if let (Some(ca), Some(cb)) = (l.child_towards(&a), l.child_towards(&b)) {
            prop_assert_ne!(ca, cb);
        }
    }

    #[test]
    fn lca_absorbs(a in action_strategy(), b in action_strategy()) {
        // Lemma 5b's identity: lca(A, B) = lca(A, lca(A, B)).
        let l = a.lca(&b);
        prop_assert_eq!(a.lca(&l), l);
    }

    #[test]
    fn ancestor_antisymmetry(a in action_strategy(), b in action_strategy()) {
        if a.is_ancestor_of(&b) && b.is_ancestor_of(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn ancestor_transitivity(a in action_strategy(), b in action_strategy(), c in action_strategy()) {
        if a.is_ancestor_of(&b) && b.is_ancestor_of(&c) {
            prop_assert!(a.is_ancestor_of(&c));
        }
    }

    #[test]
    fn ancestors_iter_agrees_with_predicate(a in action_strategy(), b in action_strategy()) {
        let listed = b.ancestors().any(|x| x == a);
        prop_assert_eq!(listed, a.is_ancestor_of(&b));
    }

    #[test]
    fn child_towards_is_on_path(a in action_strategy(), b in action_strategy()) {
        match a.child_towards(&b) {
            Some(c) => {
                prop_assert!(a.is_proper_ancestor_of(&c));
                prop_assert!(c.is_ancestor_of(&b));
                prop_assert_eq!(c.depth(), a.depth() + 1);
            }
            None => prop_assert!(!a.is_proper_ancestor_of(&b)),
        }
    }

    #[test]
    fn sibling_iff_same_parent(a in action_strategy(), b in action_strategy()) {
        let expected = match (a.parent(), b.parent()) {
            (Some(pa), Some(pb)) => pa == pb,
            _ => false,
        };
        prop_assert_eq!(a.is_sibling_of(&b), expected);
    }

    #[test]
    fn ordering_is_total_and_consistent(a in action_strategy(), b in action_strategy()) {
        // ActionId's Ord is prefix-compatible: an ancestor sorts before
        // its proper descendants (used by the range-scan tree queries).
        if a.is_proper_ancestor_of(&b) {
            prop_assert!(a < b);
        }
    }
}
