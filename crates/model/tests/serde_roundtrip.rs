//! Serde round-trips for every serializable model type — universes, trees
//! and AATs are exchanged between the experiment harness and its JSON
//! output, so shape stability matters.

use rnt_model::{
    act, Aat, ActionId, ActionSummary, ObjectId, Status, TxEvent, Universe, UniverseBuilder,
    UpdateFn,
};

fn universe() -> Universe {
    UniverseBuilder::new()
        .object(0, 1)
        .object(1, -3)
        .action(act![0])
        .access(act![0, 0], 0, UpdateFn::Add(2))
        .access(act![0, 1], 1, UpdateFn::Write(9))
        .action(act![1])
        .access(act![1, 0], 0, UpdateFn::Read)
        .build()
        .unwrap()
}

fn roundtrip<T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug>(
    value: &T,
) {
    let json = serde_json::to_string(value).expect("serializes");
    let back: T = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(&back, value);
}

#[test]
fn action_ids_roundtrip() {
    roundtrip(&ActionId::root());
    roundtrip(&act![0, 3, 7]);
}

#[test]
fn universe_roundtrips() {
    roundtrip(&universe());
}

#[test]
fn aat_roundtrips() {
    let mut aat = Aat::trivial();
    aat.tree.create(act![0]);
    aat.tree.create(act![0, 0]);
    aat.tree.set_committed(&act![0, 0]);
    aat.tree.set_label(act![0, 0], 1);
    aat.append_datastep(ObjectId(0), act![0, 0]);
    aat.tree.create(act![1]);
    aat.tree.set_aborted(&act![1]);
    roundtrip(&aat);
}

#[test]
fn summary_roundtrips() {
    let s = ActionSummary::from_entries([
        (act![0], Status::Committed),
        (act![2, 1], Status::Active),
        (act![3], Status::Aborted),
    ]);
    roundtrip(&s);
}

#[test]
fn events_roundtrip() {
    for e in [
        TxEvent::Create(act![0]),
        TxEvent::Commit(act![0]),
        TxEvent::Abort(act![0]),
        TxEvent::Perform(act![0, 1], -7),
        TxEvent::ReleaseLock(act![0], ObjectId(1)),
        TxEvent::LoseLock(act![0], ObjectId(1)),
    ] {
        roundtrip(&e);
    }
}

#[test]
fn update_fns_roundtrip() {
    for u in [
        UpdateFn::Read,
        UpdateFn::Write(5),
        UpdateFn::Add(-2),
        UpdateFn::Mul(3),
        UpdateFn::Xor(7),
        UpdateFn::Max(0),
    ] {
        roundtrip(&u);
    }
}

#[test]
fn deserialized_universe_behaves_identically() {
    let u = universe();
    let json = serde_json::to_string(&u).unwrap();
    let back: Universe = serde_json::from_str(&json).unwrap();
    assert_eq!(back.object_count(), u.object_count());
    assert_eq!(back.children_of(&ActionId::root()), u.children_of(&ActionId::root()));
    assert_eq!(back.update_of(&act![0, 1]), Some(UpdateFn::Write(9)));
}
