//! Property-based cross-validation of Theorem 9: the cycle-free
//! characterization of data-serializability must agree with the
//! brute-force definition on arbitrary (not just computable) AATs.

use proptest::prelude::*;
use rnt_model::serial::{is_data_serializable_bruteforce, is_serializable_bruteforce};
use rnt_model::{act, Aat, ActionId, ObjectId, Universe, UniverseBuilder, UpdateFn, Value};

/// A fixed small universe rich enough for interesting conflicts:
/// two top-level actions, each with a nested subtransaction holding two
/// accesses, over two objects with non-commuting updates.
fn universe() -> Universe {
    UniverseBuilder::new()
        .object(0, 1)
        .object(1, 2)
        .action(act![0])
        .action(act![0, 0])
        .access(act![0, 0, 0], 0, UpdateFn::Add(1))
        .access(act![0, 0, 1], 1, UpdateFn::Mul(2))
        .access(act![0, 1], 0, UpdateFn::Read)
        .action(act![1])
        .access(act![1, 0], 0, UpdateFn::Mul(3))
        .access(act![1, 1], 1, UpdateFn::Add(5))
        .build()
        .unwrap()
}

/// Build an AAT from generated choices: which actions exist and their
/// statuses, per-object permutations, and label noise.
fn aat_from(
    universe: &Universe,
    status_picks: Vec<u8>,
    order_noise: Vec<usize>,
    label_noise: Vec<Option<Value>>,
) -> Aat {
    let mut aat = Aat::trivial();
    let mut actions: Vec<ActionId> = universe.actions().cloned().collect();
    actions.sort_by_key(|a| a.depth());
    for (i, a) in actions.iter().enumerate() {
        let pick = status_picks.get(i).copied().unwrap_or(0) % 4;
        if pick == 3 {
            continue; // not created
        }
        let parent = a.parent().expect("non-root");
        if !aat.tree.contains(&parent) {
            continue;
        }
        aat.tree.create(a.clone());
        // Accesses are either committed (a datastep) or left out entirely;
        // inner actions range over all three statuses.
        match pick {
            0 => aat.tree.set_committed(a),
            1 => {
                if universe.is_access(a) {
                    aat.tree.set_committed(a)
                } // else: stays active
            }
            2 => {
                if universe.is_access(a) {
                    aat.tree.set_committed(a)
                } else {
                    aat.tree.set_aborted(a)
                }
            }
            _ => unreachable!(),
        }
    }
    // Per-object order: name order rotated by noise.
    for (i, obj) in universe.objects().enumerate() {
        let mut steps: Vec<ActionId> = aat.tree.datasteps_of(obj.id, universe).collect();
        if !steps.is_empty() {
            let rot = order_noise.get(i).copied().unwrap_or(0) % steps.len();
            steps.rotate_left(rot);
            // Extra shuffle: swap first two when noise is odd.
            if steps.len() >= 2 && order_noise.get(i + 2).copied().unwrap_or(0) % 2 == 1 {
                steps.swap(0, 1);
            }
        }
        for a in steps {
            aat.append_datastep(obj.id, a);
        }
    }
    // Labels: correct fold, possibly overridden by noise.
    let all: Vec<(ActionId, ObjectId)> = aat
        .data_objects()
        .flat_map(|x| aat.data_order(x).iter().cloned().map(move |a| (a, x)))
        .collect();
    for (i, (a, x)) in all.into_iter().enumerate() {
        let init = universe.init_of(x).expect("declared");
        let correct = rnt_model::fold_updates(
            init,
            aat.v_data(&a, universe).iter().map(|b| universe.update_of(b).expect("access")),
        );
        let label = match label_noise.get(i).copied().flatten() {
            Some(noise) => correct.wrapping_add(noise),
            None => correct,
        };
        aat.tree.set_label(a, label);
    }
    aat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn theorem9_characterization_agrees_with_definition(
        status_picks in prop::collection::vec(0u8..4, 9),
        order_noise in prop::collection::vec(0usize..6, 4),
        label_noise in prop::collection::vec(prop::option::weighted(0.25, 1i64..4), 8),
    ) {
        let u = universe();
        let aat = aat_from(&u, status_picks, order_noise, label_noise);
        prop_assert_eq!(
            aat.is_data_serializable(&u),
            is_data_serializable_bruteforce(&aat, &u),
            "Theorem 9 disagreement on {:?}", aat
        );
    }

    #[test]
    fn data_serializable_implies_serializable(
        status_picks in prop::collection::vec(0u8..4, 9),
        order_noise in prop::collection::vec(0usize..6, 4),
    ) {
        let u = universe();
        let aat = aat_from(&u, status_picks, order_noise, vec![]);
        if aat.is_data_serializable(&u) {
            prop_assert!(is_serializable_bruteforce(&aat.tree, &u));
        }
    }

    #[test]
    fn rw_characterization_is_sound(
        status_picks in prop::collection::vec(0u8..4, 9),
        order_noise in prop::collection::vec(0usize..6, 4),
    ) {
        // When the conflict-restricted check passes, a serializing order
        // exists by definition (the rw check is a *sufficient* condition).
        let u = universe();
        let aat = aat_from(&u, status_picks, order_noise, vec![]);
        if aat.is_rw_data_serializable(&u) {
            prop_assert!(
                is_serializable_bruteforce(&aat.tree, &u),
                "rw check passed but no serializing order exists: {:?}", aat
            );
        }
    }

    #[test]
    fn rw_edges_subset_of_full_edges(
        status_picks in prop::collection::vec(0u8..4, 9),
        order_noise in prop::collection::vec(0usize..6, 4),
    ) {
        let u = universe();
        let aat = aat_from(&u, status_picks, order_noise, vec![]);
        let full = aat.sibling_data_edges();
        for e in aat.rw_sibling_data_edges(&u) {
            prop_assert!(full.contains(&e));
        }
    }

    #[test]
    fn perm_preserves_data_serializability(
        status_picks in prop::collection::vec(0u8..4, 9),
        order_noise in prop::collection::vec(0usize..6, 4),
    ) {
        // perm only removes datasteps that were invisible to survivors, so
        // a data-serializable AAT has a data-serializable perm.
        let u = universe();
        let aat = aat_from(&u, status_picks, order_noise, vec![]);
        if aat.is_data_serializable(&u) {
            prop_assert!(aat.perm().is_data_serializable(&u));
        }
    }
}
