//! Property-based tests for action trees: the visibility lemmas (5, 6, 7)
//! of the paper, checked on randomly generated trees.

use proptest::prelude::*;
use rnt_model::{ActionId, ActionTree, Status};

/// Strategy: a random parent-closed action tree with random statuses.
/// Encoded as a vector of (child-index, status) instructions interpreted
/// as "create a child of a random existing vertex".
fn tree_strategy() -> impl Strategy<Value = ActionTree> {
    prop::collection::vec((0u32..4, 0u8..3, 0usize..8), 0..14).prop_map(|instrs| {
        let mut tree = ActionTree::trivial();
        let mut vertices = vec![ActionId::root()];
        for (child_idx, status, parent_pick) in instrs {
            let parent = vertices[parent_pick % vertices.len()].clone();
            let a = parent.child(child_idx);
            if tree.contains(&a) {
                continue;
            }
            tree.create(a.clone());
            match status {
                0 => {}
                1 => tree.set_committed(&a),
                _ => tree.set_aborted(&a),
            }
            vertices.push(a);
        }
        tree
    })
}

proptest! {
    #[test]
    fn lemma5a_ancestors_visible_to_descendants(tree in tree_strategy()) {
        let vs: Vec<ActionId> = tree.vertices().cloned().collect();
        for a in &vs {
            for b in &vs {
                if b.is_descendant_of(a) {
                    prop_assert!(tree.is_visible_to(a, b), "{a} not visible to desc {b}");
                }
            }
        }
    }

    #[test]
    fn lemma5b_visibility_via_lca(tree in tree_strategy()) {
        let vs: Vec<ActionId> = tree.vertices().cloned().collect();
        for a in &vs {
            for b in &vs {
                let l = a.lca(b);
                prop_assert_eq!(
                    tree.is_visible_to(a, b),
                    tree.is_visible_to(a, &l),
                    "lemma 5b failed for {} {}", a, b
                );
            }
        }
    }

    #[test]
    fn lemma5c_visibility_transitive(tree in tree_strategy()) {
        let vs: Vec<ActionId> = tree.vertices().cloned().collect();
        for a in &vs {
            for b in &vs {
                if !tree.is_visible_to(a, b) { continue; }
                for c in &vs {
                    if tree.is_visible_to(b, c) {
                        prop_assert!(tree.is_visible_to(a, c), "5c failed {a},{b},{c}");
                    }
                }
            }
        }
    }

    #[test]
    fn lemma5d_descendants_inherit_views(tree in tree_strategy()) {
        // If A ∈ desc(B) and C ∈ visible(B), then C ∈ visible(A).
        let vs: Vec<ActionId> = tree.vertices().cloned().collect();
        for b in &vs {
            for a in vs.iter().filter(|a| a.is_descendant_of(b)) {
                for c in &vs {
                    if tree.is_visible_to(c, b) {
                        prop_assert!(tree.is_visible_to(c, a), "5d failed {a},{b},{c}");
                    }
                }
            }
        }
    }

    #[test]
    fn lemma5e_visible_closed_under_ancestors(tree in tree_strategy()) {
        // If A ∈ desc(B) and A ∈ visible(C), then B ∈ visible(C).
        let vs: Vec<ActionId> = tree.vertices().cloned().collect();
        for a in &vs {
            for b in vs.iter().filter(|b| a.is_descendant_of(b)) {
                for c in &vs {
                    if tree.is_visible_to(a, c) {
                        prop_assert!(tree.is_visible_to(b, c), "5e failed {a},{b},{c}");
                    }
                }
            }
        }
    }

    #[test]
    fn lemma6_visible_to_live_is_live(tree in tree_strategy()) {
        let vs: Vec<ActionId> = tree.vertices().cloned().collect();
        for a in vs.iter().filter(|a| tree.is_live(a)) {
            for b in &vs {
                if tree.is_visible_to(b, a) {
                    prop_assert!(tree.is_live(b), "lemma 6 failed: {b} vis to live {a}");
                }
            }
        }
    }

    #[test]
    fn lemma7_perm_mutually_visible(tree in tree_strategy()) {
        let p = tree.perm();
        let vs: Vec<ActionId> = p.vertices().cloned().collect();
        for a in &vs {
            for b in &vs {
                prop_assert!(p.is_visible_to(b, a), "lemma 7 failed: {b}, {a}");
            }
        }
    }

    #[test]
    fn perm_is_parent_closed_tree(tree in tree_strategy()) {
        let p = tree.perm();
        for a in p.vertices() {
            if let Some(parent) = a.parent() {
                prop_assert!(p.contains(&parent), "perm not parent-closed at {a}");
            }
        }
    }

    #[test]
    fn perm_statuses_all_committed_except_root(tree in tree_strategy()) {
        let p = tree.perm();
        for (a, s) in p.statuses() {
            if a.is_root() {
                prop_assert_eq!(s, Status::Active);
            } else {
                prop_assert_eq!(s, Status::Committed);
            }
        }
    }

    #[test]
    fn perm_is_idempotent(tree in tree_strategy()) {
        let p = tree.perm();
        prop_assert_eq!(p.perm(), p);
    }

    #[test]
    fn le_is_reflexive_and_transitive(t1 in tree_strategy(), t2 in tree_strategy(), t3 in tree_strategy()) {
        prop_assert!(t1.le(&t1));
        if t1.le(&t2) && t2.le(&t3) {
            prop_assert!(t1.le(&t3));
        }
    }

    #[test]
    fn children_in_tree_are_children(tree in tree_strategy()) {
        let vs: Vec<ActionId> = tree.vertices().cloned().collect();
        for a in &vs {
            for c in tree.children_in_tree(a) {
                let parent = c.parent();
                prop_assert_eq!(parent.as_ref(), Some(a));
            }
            // Completeness: every vertex whose parent is `a` is listed.
            let listed: Vec<&ActionId> = tree.children_in_tree(a).collect();
            for v in &vs {
                if v.parent().as_ref() == Some(a) {
                    prop_assert!(listed.contains(&v));
                }
            }
        }
    }
}
