//! Distributed-level benchmarks: gossip-policy cost to quiescence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rnt_distributed::{Level5, Topology};
use rnt_sim::gen::{random_universe, UniverseConfig};
use rnt_sim::gossip::{run_gossip, GossipConfig, GossipPolicy};
use std::sync::Arc;

fn bench_gossip(c: &mut Criterion) {
    let cfg =
        UniverseConfig { objects: 3, top_actions: 3, max_fanout: 2, max_depth: 2, inner_prob: 0.5 };
    let mut group = c.benchmark_group("distributed/gossip_to_quiescence");
    group.sample_size(10);
    for nodes in [2usize, 4] {
        for policy in
            [GossipPolicy::EagerFull, GossipPolicy::DeltaOnChange, GossipPolicy::Periodic(8)]
        {
            group.bench_with_input(
                BenchmarkId::new(format!("{nodes}nodes"), format!("{policy:?}")),
                &policy,
                |b, &policy| {
                    b.iter(|| {
                        let u = Arc::new(random_universe(11, &cfg));
                        let topo = Arc::new(Topology::round_robin(&u, nodes));
                        let alg = Level5::new(u, topo);
                        run_gossip(
                            &alg,
                            &GossipConfig { policy, seed: 5, max_steps: 200_000, crash: None },
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_gossip
}
criterion_main!(benches);
