//! Micro-benchmarks for the model layer: visibility queries, `perm`,
//! the Theorem 9 characterization, and its brute-force ground truth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rnt_model::serial::is_data_serializable_bruteforce;
use rnt_sim::aat_gen::random_aat;
use rnt_sim::gen::{random_universe, UniverseConfig};

fn bench_visibility(c: &mut Criterion) {
    let cfg =
        UniverseConfig { objects: 4, top_actions: 8, max_fanout: 3, max_depth: 4, inner_prob: 0.6 };
    let u = random_universe(1, &cfg);
    let aat = random_aat(&u, 2, 0.0);
    let vs: Vec<_> = aat.tree.vertices().cloned().collect();
    c.bench_function("model/is_visible_to (all pairs)", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for a in &vs {
                for q in &vs {
                    if aat.tree.is_visible_to(a, q) {
                        count += 1;
                    }
                }
            }
            count
        })
    });
}

fn bench_perm(c: &mut Criterion) {
    let cfg =
        UniverseConfig { objects: 4, top_actions: 8, max_fanout: 3, max_depth: 4, inner_prob: 0.6 };
    let u = random_universe(1, &cfg);
    let aat = random_aat(&u, 2, 0.0);
    c.bench_function("model/perm", |b| b.iter(|| aat.perm()));
}

fn bench_theorem9(c: &mut Criterion) {
    let mut group = c.benchmark_group("model/theorem9");
    for (name, tops) in [("small", 2u32), ("medium", 4), ("large", 8)] {
        let cfg = UniverseConfig {
            objects: 3,
            top_actions: tops,
            max_fanout: 2,
            max_depth: 3,
            inner_prob: 0.5,
        };
        let u = random_universe(7, &cfg);
        let aat = random_aat(&u, 9, 0.0);
        group.bench_with_input(BenchmarkId::new("characterization", name), &aat, |b, aat| {
            b.iter(|| aat.is_data_serializable(&u))
        });
        if tops <= 2 {
            group.bench_with_input(BenchmarkId::new("bruteforce", name), &aat, |b, aat| {
                b.iter(|| is_data_serializable_bruteforce(aat, &u))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_visibility, bench_perm, bench_theorem9
}
criterion_main!(benches);
