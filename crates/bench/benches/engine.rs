//! Engine benchmarks: operation latencies and end-to-end workload
//! throughput for the shapes/policies the experiment tables report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rnt_core::{Db, DbConfig, DeadlockPolicy};
use rnt_sim::engine::{run_workload, seeded_db, KeyDist, TxnShape, Workload};

fn bench_single_ops(c: &mut Criterion) {
    let db: Db<u64, i64> = Db::new();
    for k in 0..1024u64 {
        db.insert(k, 0);
    }
    let mut group = c.benchmark_group("engine/ops");
    group.throughput(Throughput::Elements(1));
    group.bench_function("begin+commit empty", |b| {
        b.iter(|| db.begin().commit().expect("empty commit"))
    });
    group.bench_function("read (uncontended)", |b| {
        let t = db.begin();
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 1024;
            t.read(&k).expect("seeded")
        });
    });
    group.bench_function("rmw (uncontended)", |b| {
        let t = db.begin();
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 1024;
            t.rmw(&k, |v| v + 1).expect("seeded")
        });
    });
    group.bench_function("txn with 4 ops", |b| {
        let mut k = 0u64;
        b.iter(|| {
            let t = db.begin();
            for _ in 0..4 {
                k = (k + 1) % 1024;
                t.rmw(&k, |v| v + 1).expect("seeded");
            }
            t.commit().expect("commit");
        });
    });
    group.bench_function("subtxn begin+op+commit", |b| {
        let t = db.begin();
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 1024;
            let c = t.child().expect("child");
            c.rmw(&k, |v| v + 1).expect("seeded");
            c.commit().expect("commit");
        });
    });
    group.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/workload");
    group.sample_size(10);
    let shapes: [(&str, TxnShape); 3] = [
        ("serial", TxnShape::Serial),
        ("flat", TxnShape::Flat),
        ("nested", TxnShape::Nested { children: 4, depth: 1 }),
    ];
    for (name, shape) in shapes {
        let w = Workload {
            threads: 4,
            txns_per_thread: 100,
            ops_per_txn: 4,
            read_ratio: 0.5,
            keys: 512,
            dist: KeyDist::Uniform,
            shape,
            abort_prob: 0.0,
            exclusive_reads: false,
            op_abort_prob: 0.0,
            sorted_ops: false,
            seed: 1,
        };
        group.throughput(Throughput::Elements((w.threads as u64) * (w.txns_per_thread as u64)));
        group.bench_with_input(BenchmarkId::new("shape", name), &w, |b, w| {
            b.iter(|| {
                let db = seeded_db(DbConfig::default(), w.keys);
                run_workload(&db, w)
            })
        });
    }
    for policy in [DeadlockPolicy::Detect, DeadlockPolicy::WaitDie, DeadlockPolicy::NoWait] {
        let w = Workload {
            threads: 4,
            txns_per_thread: 50,
            ops_per_txn: 4,
            read_ratio: 0.2,
            keys: 32,
            dist: KeyDist::Zipf(0.9),
            shape: TxnShape::Nested { children: 4, depth: 1 },
            abort_prob: 0.0,
            exclusive_reads: false,
            op_abort_prob: 0.0,
            sorted_ops: false,
            seed: 1,
        };
        group.bench_with_input(
            BenchmarkId::new("contended_policy", format!("{policy:?}")),
            &w,
            |b, w| {
                b.iter(|| {
                    let db = seeded_db(DbConfig::builder().policy(policy).build(), w.keys);
                    run_workload(&db, w)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_single_ops, bench_workloads
}
criterion_main!(benches);
