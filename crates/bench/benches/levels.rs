//! Micro-benchmarks for the algebra tower: per-event application cost at
//! each level and the cost ablation the paper's level-4 optimization
//! motivates (version maps vs value maps).

use criterion::{criterion_group, criterion_main, Criterion};
use rnt_algebra::Algebra;
use rnt_locking::{Level3, Level4};
use rnt_sim::gen::{random_run, random_universe, UniverseConfig};
use rnt_spec::Level2;
use std::sync::Arc;

fn cfg() -> UniverseConfig {
    UniverseConfig { objects: 3, top_actions: 4, max_fanout: 2, max_depth: 3, inner_prob: 0.5 }
}

fn bench_apply(c: &mut Criterion) {
    let u = Arc::new(random_universe(5, &cfg()));
    let mut group = c.benchmark_group("levels/replay_run");
    let l2 = Level2::new(u.clone());
    let run2 = random_run(&l2, 9, 60);
    group.bench_function("level2", |b| {
        b.iter(|| {
            let mut s = l2.initial();
            for e in &run2 {
                s = l2.apply(&s, e).expect("valid");
            }
            s
        })
    });
    // Levels 3 and 4 run the *same* event sequence (Lemma 19/20): this is
    // the paper's optimization ablation — how much does dropping version
    // sequences for single values save?
    let l4 = Level4::new(u.clone());
    let run4 = random_run(&l4, 9, 60);
    let l3 = Level3::new(u.clone());
    group.bench_function("level3 (version sequences)", |b| {
        b.iter(|| {
            let mut s = l3.initial();
            for e in &run4 {
                s = l3.apply(&s, e).expect("valid at level 3");
            }
            s
        })
    });
    group.bench_function("level4 (latest values)", |b| {
        b.iter(|| {
            let mut s = l4.initial();
            for e in &run4 {
                s = l4.apply(&s, e).expect("valid");
            }
            s
        })
    });
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    let u = Arc::new(random_universe(5, &cfg()));
    let l4 = Level4::new(u);
    let run = random_run(&l4, 9, 30);
    let mut s = l4.initial();
    for e in &run {
        s = l4.apply(&s, e).expect("valid");
    }
    c.bench_function("levels/enabled level4", |b| b.iter(|| l4.enabled(&s).len()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_apply, bench_enabled
}
criterion_main!(benches);
