//! Snapshot-read benchmark: lock-free MVCC snapshot reads vs locked
//! transactional reads under a write-heavy contending workload.
//!
//! N writer threads hammer a small Zipf-skewed key space with `rmw`
//! transactions while M reader threads scan batches of keys — either
//! through the lock manager (a read-only transaction per batch, taking a
//! read lock per key and colliding with the writers' write locks) or
//! through [`rnt_core::Db::snapshot`] (one pin per batch, zero locks).
//! Both arms read the same seeded key sequence; each rep runs them
//! back-to-back with the same seed and the pair with the median
//! throughput ratio is reported, cancelling host-load drift out of the
//! comparison (same protocol as the contention benchmark). The
//! `snapshot_bench` binary renders the result as `BENCH_snapshot.json`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rnt_core::{Db, DbConfig, DeadlockPolicy};
use rnt_sim::engine::ZipfSampler;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Keys each reader touches per batch (one transaction or one pin).
const BATCH: usize = 16;
/// The key-space size: small enough that the Zipf head is genuinely hot.
const KEYS: u64 = 128;
/// Zipf exponent for both writers and readers.
const ZIPF_S: f64 = 1.1;

/// How a reader arm performs its reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadMode {
    /// A read-only transaction per batch: read locks through the lock
    /// manager, conflicting with writer-held write locks.
    Locked,
    /// A pinned snapshot per batch: no lock-manager interaction at all.
    Snapshot,
}

impl ReadMode {
    fn label(self) -> &'static str {
        match self {
            ReadMode::Locked => "locked",
            ReadMode::Snapshot => "snapshot",
        }
    }
}

/// One measured cell of the sweep.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRow {
    /// Read mode: "locked" or "snapshot".
    pub mode: String,
    /// Total threads (writers + readers).
    pub threads: usize,
    /// Writer threads.
    pub writers: usize,
    /// Reader threads.
    pub readers: usize,
    /// Reads completed across all readers.
    pub reads: u64,
    /// Reads per second (the headline quantity).
    pub reads_per_sec: f64,
    /// Writer transactions committed during the read window.
    pub writer_commits: u64,
    /// Writer commits per second over the read window.
    pub writer_commits_per_sec: f64,
    /// Lock conflicts observed engine-wide over the window.
    pub conflicts: u64,
    /// Snapshot reads counted by the engine (0 for the locked arm).
    pub snapshot_reads: u64,
    /// Versions reclaimed by epoch GC during the window.
    pub versions_reclaimed: u64,
}

/// Snapshot/locked read-throughput ratio at one thread count.
#[derive(Clone, Debug, Serialize)]
pub struct Speedup {
    /// Total threads.
    pub threads: usize,
    /// snapshot reads/s divided by locked reads/s.
    pub ratio: f64,
}

/// The full benchmark report serialized to `BENCH_snapshot.json`.
#[derive(Clone, Debug, Serialize)]
pub struct BenchReport {
    /// Report format marker.
    pub schema: String,
    /// `true` when produced by the reduced `--smoke` grid.
    pub smoke: bool,
    /// Host core count (context for absolute numbers).
    pub host_cores: usize,
    /// Every measured cell.
    pub rows: Vec<BenchRow>,
    /// Per-thread-count snapshot/locked ratios.
    pub speedups: Vec<Speedup>,
    /// The ratio at the highest thread count — the acceptance headline:
    /// snapshot reads must beat locked reads write-heavy at 8 threads.
    pub headline_speedup: f64,
}

fn db_for(threads: usize) -> Db<u64, i64> {
    // NoWait + Db::run retry: a locked read that collides with a writer
    // aborts and retries rather than parking, which is the strongest
    // version of the locked arm on a small host (no 10 ms timeout cliffs
    // inflating the snapshot side's win).
    let config = DbConfig::builder().policy(DeadlockPolicy::NoWait).shards(threads.max(1)).build();
    let db = Db::with_config(config);
    for k in 0..KEYS {
        db.insert(k, k as i64);
    }
    db
}

/// Run one cell: writers spin until the readers finish their quota.
fn measure_once(mode: ReadMode, threads: usize, smoke: bool, seed: u64) -> BenchRow {
    let writers = (threads / 2).max(1);
    let readers = (threads - writers).max(1);
    let batches_per_reader: usize = if smoke { 150 } else { 1500 };

    let db = db_for(threads);
    let stop = Arc::new(AtomicBool::new(false));
    let commits_before = db.stats().committed;

    let mut writer_handles = Vec::new();
    for w in 0..writers {
        let db = db.clone();
        let stop = stop.clone();
        let mut rng = StdRng::seed_from_u64(seed ^ (w as u64 + 1) << 8);
        writer_handles.push(std::thread::spawn(move || {
            let zipf = ZipfSampler::new(KEYS, ZIPF_S);
            while !stop.load(Ordering::Relaxed) {
                let key = zipf.sample(&mut rng);
                let _ = db.run_with_retries(64, |t| t.rmw(&key, |v| v + 1));
            }
        }));
    }

    let start = Instant::now();
    let mut reader_handles = Vec::new();
    for r in 0..readers {
        let db = db.clone();
        let mut rng = StdRng::seed_from_u64(seed ^ (r as u64 + 1) << 24);
        reader_handles.push(std::thread::spawn(move || {
            let zipf = ZipfSampler::new(KEYS, ZIPF_S);
            let mut sum = 0i64;
            let mut reads = 0u64;
            for _ in 0..batches_per_reader {
                let keys: Vec<u64> = (0..BATCH).map(|_| zipf.sample(&mut rng)).collect();
                match mode {
                    ReadMode::Locked => {
                        sum += db
                            .run(|t| {
                                let mut s = 0i64;
                                for key in &keys {
                                    s += t.read(key)?;
                                }
                                Ok(s)
                            })
                            .unwrap_or(0);
                    }
                    ReadMode::Snapshot => {
                        let snap = db.snapshot();
                        for key in &keys {
                            sum += snap.read(key).unwrap_or(0);
                        }
                    }
                }
                reads += BATCH as u64;
            }
            std::hint::black_box(sum);
            reads
        }));
    }

    let reads: u64 = reader_handles.into_iter().map(|h| h.join().expect("reader")).sum();
    let elapsed = start.elapsed();
    stop.store(true, Ordering::Relaxed);
    for h in writer_handles {
        h.join().expect("writer");
    }

    let stats = db.stats();
    let secs = elapsed.as_secs_f64().max(1e-9);
    let writer_commits = stats.committed - commits_before;
    BenchRow {
        mode: mode.label().into(),
        threads,
        writers,
        readers,
        reads,
        reads_per_sec: reads as f64 / secs,
        writer_commits,
        writer_commits_per_sec: writer_commits as f64 / secs,
        conflicts: stats.conflicts,
        snapshot_reads: stats.snapshot_reads,
        versions_reclaimed: stats.versions_reclaimed,
    }
}

/// Measure one thread count as a paired locked/snapshot comparison and
/// report the median-ratio pair (see the module docs).
fn measure_pair(threads: usize, smoke: bool) -> (BenchRow, BenchRow) {
    let reps = if smoke { 1 } else { 5 };
    let mut pairs: Vec<(BenchRow, BenchRow)> = (0..reps)
        .map(|rep| {
            let seed = 0x5AA9 ^ threads as u64 ^ (rep as u64) << 16;
            let l = measure_once(ReadMode::Locked, threads, smoke, seed);
            let s = measure_once(ReadMode::Snapshot, threads, smoke, seed);
            (l, s)
        })
        .collect();
    let ratio = |p: &(BenchRow, BenchRow)| p.1.reads_per_sec / p.0.reads_per_sec.max(1e-9);
    pairs.sort_by(|x, y| ratio(x).total_cmp(&ratio(y)));
    pairs.swap_remove(pairs.len() / 2)
}

/// Run the full sweep and assemble the report.
pub fn run_bench(smoke: bool) -> BenchReport {
    let thread_counts: &[usize] = if smoke { &[2, 8] } else { &[2, 4, 8] };
    let max_threads = *thread_counts.last().unwrap();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &threads in thread_counts {
        eprintln!("snapshot bench: {threads} threads...");
        let (l, s) = measure_pair(threads, smoke);
        speedups.push(Speedup { threads, ratio: s.reads_per_sec / l.reads_per_sec.max(1e-9) });
        rows.push(l);
        rows.push(s);
    }
    let headline_speedup =
        speedups.iter().find(|s| s.threads == max_threads).map(|s| s.ratio).unwrap_or(0.0);
    BenchReport {
        schema: "rnt-bench/snapshot-read/v1".into(),
        smoke,
        host_cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        rows,
        speedups,
        headline_speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_covers_every_cell() {
        let report = run_bench(true);
        // 2 modes x 2 thread counts.
        assert_eq!(report.rows.len(), 4);
        assert_eq!(report.speedups.len(), 2);
        assert!(report.rows.iter().all(|r| r.reads > 0));
        let snapshot_rows: Vec<_> = report.rows.iter().filter(|r| r.mode == "snapshot").collect();
        assert!(snapshot_rows.iter().all(|r| r.snapshot_reads >= r.reads));
        assert!(report.rows.iter().filter(|r| r.mode == "locked").all(|r| r.snapshot_reads == 0));
        assert!(report.headline_speedup.is_finite() && report.headline_speedup > 0.0);
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        assert!(json.contains("snapshot-read"));
    }
}
