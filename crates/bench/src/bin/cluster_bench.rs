//! Cluster scaling benchmark: sharded multi-node engine vs raw `Db`.
//!
//! Usage: `cluster_bench [--smoke] [--out PATH]`
//!
//! Runs read-mostly and cross-node-write mixes against a raw single-node
//! `Db` baseline and `Cluster` arms at 1/2/4/8 in-process nodes under
//! eager gossip, then writes the JSON report (default
//! `BENCH_cluster.json`). All arms run the same closed-loop worker count
//! on paired seeds; the summary carries cluster-N/cluster-1 scaling and
//! the cluster-1/db routing overhead. `--smoke` runs a reduced grid for
//! CI; the committed baseline is produced by a full run.

use rnt_bench::cluster_exp::run_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_cluster.json".to_string());

    let report = run_bench(smoke);

    println!("| mix | arm | threads | txns/s | gossip sends | entries shipped |");
    println!("|---|---|---|---|---|---|");
    for r in &report.rows {
        println!(
            "| {} | {} | {} | {:.0} | {} | {} |",
            r.mix, r.arm, r.threads, r.commits_per_sec, r.gossip_sends, r.gossip_entries
        );
    }
    println!();
    for s in &report.scaling {
        println!("{} at {} nodes: {:.2}x vs 1 node", s.mix, s.nodes, s.vs_one_node);
    }
    for s in &report.routing_overhead {
        println!("{} routing layer: {:.2}x of raw db", s.mix, s.vs_one_node);
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out} ({} cells)", report.rows.len());
}
