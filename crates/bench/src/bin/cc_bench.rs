//! Optimistic vs locking concurrency-control benchmark.
//!
//! Usage: `cc_bench [--smoke] [--out PATH]`
//!
//! Runs both CC modes over a read-heavy low-contention workload and a
//! write-heavy hot-key workload at several thread counts, then writes
//! the JSON report (default `BENCH_cc.json`). The interesting output is
//! the crossover: optimistic wins the low-contention cell, locking wins
//! the hot-key cell. `--smoke` runs a reduced grid for CI; the committed
//! baseline is produced by a full run.

use rnt_bench::cc_exp::run_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_cc.json".to_string());

    let report = run_bench(smoke);

    println!("| workload | mode | threads | commits/s | lock conflicts | occ conflicts | aborts |");
    println!("|---|---|---|---|---|---|---|");
    for r in &report.rows {
        println!(
            "| {} | {} | {} | {:.0} | {} | {} | {} |",
            r.workload,
            r.mode,
            r.threads,
            r.commits_per_sec,
            r.lock_conflicts,
            r.occ_conflicts,
            r.aborts
        );
    }
    println!();
    for s in &report.speedups {
        println!(
            "optimistic/locking throughput on {} at {} threads: {:.2}x",
            s.workload, s.threads, s.ratio
        );
    }
    println!(
        "headline (max threads): read-heavy {:.2}x, write-hot {:.2}x",
        report.headline_read_heavy, report.headline_write_hot
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out} ({} cells)", report.rows.len());
}
