//! Snapshot-read vs locked-read benchmark.
//!
//! Usage: `snapshot_bench [--smoke] [--out PATH]`
//!
//! Runs N writers against M readers on a hot Zipf key space, comparing
//! lock-free `Db::snapshot` reads against read-locked transactions, then
//! writes the JSON report (default `BENCH_snapshot.json`). `--smoke` runs
//! a reduced grid for CI; the committed baseline is produced by a full
//! run.

use rnt_bench::snapshot_exp::run_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_snapshot.json".to_string());

    let report = run_bench(smoke);

    println!("| mode | threads | W/R | reads/s | writer commits/s | conflicts | reclaimed |");
    println!("|---|---|---|---|---|---|---|");
    for r in &report.rows {
        println!(
            "| {} | {} | {}/{} | {:.0} | {:.0} | {} | {} |",
            r.mode,
            r.threads,
            r.writers,
            r.readers,
            r.reads_per_sec,
            r.writer_commits_per_sec,
            r.conflicts,
            r.versions_reclaimed
        );
    }
    println!();
    for s in &report.speedups {
        println!("snapshot/locked read throughput at {} threads: {:.2}x", s.threads, s.ratio);
    }
    println!("headline (max threads): {:.2}x", report.headline_speedup);

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out} ({} cells)", report.rows.len());
}
