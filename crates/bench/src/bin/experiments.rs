//! Regenerate the experiment tables of EXPERIMENTS.md.
//!
//! Usage: `experiments [--quick] [ids...]`, e.g. `experiments --quick e2 e5`.
//! With no ids, all experiments run. Markdown goes to stdout; a JSON dump
//! is written to `experiments.json` in the working directory.

use rnt_bench::table::Table;
use rnt_bench::{dist_exp, engine_exp, theory};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<String> =
        args.iter().filter(|a| !a.starts_with("--")).map(|a| a.to_lowercase()).collect();
    let want = |id: &str| ids.is_empty() || ids.iter().any(|w| w == &id.to_lowercase());

    type Job = Box<dyn Fn(bool) -> Table>;
    let mut tables: Vec<Table> = Vec::new();
    let jobs: Vec<(&str, Job)> = vec![
        ("e1", Box::new(theory::e1_exhaustive)),
        ("e2", Box::new(theory::e2_theorem9)),
        ("e3", Box::new(theory::e3_simulation_chain)),
        ("f1-f3", Box::new(theory::figures_diagram_chase)),
        ("e4", Box::new(engine_exp::e4_audit)),
        ("e4b", Box::new(engine_exp::e4b_schedule_sweep)),
        ("e5", Box::new(engine_exp::e5_throughput)),
        ("e5b", Box::new(engine_exp::e5b_policies)),
        ("e6", Box::new(engine_exp::e6_rw_vs_exclusive)),
        ("e7", Box::new(engine_exp::e7_resilience)),
        ("e8", Box::new(dist_exp::e8_gossip)),
        ("e8b", Box::new(dist_exp::e8b_crash)),
        ("e9", Box::new(theory::e9_orphan_views)),
        ("e10", Box::new(theory::e10_schedulers)),
    ];
    for (id, job) in jobs {
        let figure_alias = id == "f1-f3" && want("figures");
        if !want(id) && !figure_alias {
            continue;
        }
        eprintln!("running {id}{}...", if quick { " (quick)" } else { "" });
        let t = job(quick);
        println!("{}", t.to_markdown());
        tables.push(t);
    }
    let json = serde_json::to_string_pretty(&tables).expect("tables serialize");
    std::fs::write("experiments.json", json).expect("write experiments.json");
    eprintln!("wrote experiments.json ({} tables)", tables.len());
}
