//! Hot-path scaling benchmark: legacy vs scaled internals.
//!
//! Usage: `hotpath_bench [--smoke] [--out PATH]`
//!
//! Runs the pre-scaling internals (`HotPath::Legacy`: single-map
//! registry, shared stats block, fully locked pins) against the scaled
//! internals (`HotPath::Scaled`: sharded registry, striped stats,
//! lock-free pin ring) over read-heavy, write-heavy and snapshot-churn
//! workloads at several thread counts, then writes the JSON report
//! (default `BENCH_hotpath.json`). Arms are paired on the same seeds
//! per rep; each row carries throughput plus p50/p99 operation latency.
//! `--smoke` runs a reduced grid for CI; the committed baseline is
//! produced by a full run.

use rnt_bench::hotpath_exp::run_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());

    let report = run_bench(smoke);

    println!("| workload | arm | threads | ops/s | p50 us | p99 us |");
    println!("|---|---|---|---|---|---|");
    for r in &report.rows {
        println!(
            "| {} | {} | {} | {:.0} | {:.1} | {:.1} |",
            r.workload, r.arm, r.threads, r.commits_per_sec, r.p50_us, r.p99_us
        );
    }
    println!();
    for s in &report.speedups {
        println!(
            "scaled/legacy throughput on {} at {} threads: {:.2}x",
            s.workload, s.threads, s.ratio
        );
    }
    println!(
        "single-thread geomean {:.2}x, read-heavy@1t {:.2}x, worst cell {:.2}x",
        report.geomean_single_thread, report.headline_read_heavy_1t, report.worst_ratio
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out} ({} cells)", report.rows.len());
}
