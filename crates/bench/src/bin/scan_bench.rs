//! Range-scan vs locked-scan benchmark over the ordered keyspace.
//!
//! Usage: `scan_bench [--smoke] [--out PATH]`
//!
//! Runs scanner threads sweeping random key windows against two
//! background writers, comparing lock-free `Snapshot::range` walks
//! against read-locked transactional ranges (both through the same
//! generic `ReadView` kernel), then writes the JSON report (default
//! `BENCH_scan.json`). `--smoke` runs a reduced grid for CI; the
//! committed baseline is produced by a full run.

use rnt_bench::scan_exp::run_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_scan.json".to_string());

    let report = run_bench(smoke);

    println!(
        "| mode | scanners | entries/s | scans/s | writer commits/s | conflicts | reclaimed |"
    );
    println!("|---|---|---|---|---|---|---|");
    for r in &report.rows {
        println!(
            "| {} | {} | {:.0} | {:.0} | {:.0} | {} | {} |",
            r.mode,
            r.scanners,
            r.entries_per_sec,
            r.scans_per_sec,
            r.writer_commits_per_sec,
            r.conflicts,
            r.versions_reclaimed
        );
    }
    println!();
    for s in &report.speedups {
        println!("snapshot/locked scan throughput at {} scanner(s): {:.2}x", s.scanners, s.ratio);
    }
    println!("headline (max scanners): {:.2}x", report.headline_speedup);

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out} ({} cells)", report.rows.len());
}
