//! Group-commit throughput benchmark.
//!
//! Usage: `commit_bench [--smoke] [--out PATH]`
//!
//! Measures durable commits/sec on real files across a thread ×
//! `group_commit` grid with the fsync path on, then writes the JSON
//! report (default `BENCH_commit.json`). `--smoke` runs a reduced window
//! for CI; the committed baseline is produced by a full run.

use rnt_bench::commit_exp::run_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_commit.json".to_string());

    let report = run_bench(smoke);

    println!("| threads | group | commits | commits/s | fsyncs | batches | amortization |");
    println!("|---|---|---|---|---|---|---|");
    for r in &report.grid {
        println!(
            "| {} | {} | {} | {:.0} | {} | {} | {:.1} |",
            r.threads,
            r.group_commit,
            r.commits,
            r.commits_per_sec,
            r.wal_fsyncs,
            r.commit_batches,
            r.batch_amortization
        );
    }
    println!();
    for (threads, speedup) in &report.speedup_by_threads {
        println!("group-commit speedup at {threads} thread(s): {speedup:.1}x");
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out} ({} cells)", report.grid.len());
}
