//! Multi-threaded lock-manager throughput benchmark.
//!
//! Usage: `engine_bench [--smoke] [--out PATH]`
//!
//! Sweeps wakeup mode (targeted vs broadcast) × contention profile ×
//! deadlock policy × thread count and writes the JSON report (default
//! `BENCH_engine.json`). `--smoke` runs a reduced grid for CI; the
//! committed baseline is produced by a full run.

use rnt_bench::contention::run_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let report = run_bench(smoke);

    println!("| wakeups | contention | policy | threads | txn/s | waits | spurious | productive |");
    println!("|---|---|---|---|---|---|---|---|");
    for r in &report.rows {
        println!(
            "| {} | {} | {} | {} | {:.0} | {} | {} | {} |",
            r.wakeups,
            r.contention,
            r.policy,
            r.threads,
            r.throughput,
            r.waits,
            r.wakeups_spurious,
            r.wakeups_productive
        );
    }
    println!();
    for s in &report.speedups {
        println!(
            "speedup ({} / {} @ {} threads): {:.2}x",
            s.contention, s.policy, s.threads, s.ratio
        );
    }
    println!("headline (geomean, zipfian-high waiting policies): {:.2}x", report.headline_speedup);

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out} ({} rows)", report.rows.len());
}
