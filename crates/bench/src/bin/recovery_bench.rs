//! Durability and crash-recovery benchmark.
//!
//! Usage: `recovery_bench [--smoke] [--out PATH]`
//!
//! Measures commit latency across durability modes (none / wal /
//! wal-fsync) on real files and recovery time against log size with and
//! without checkpoint truncation, then writes the JSON report (default
//! `BENCH_recovery.json`). `--smoke` runs a reduced grid for CI; the
//! committed baseline is produced by a full run.

use rnt_bench::recovery_exp::run_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_recovery.json".to_string());

    let report = run_bench(smoke);

    println!("| mode | txns | mean commit µs | p99 µs | commits/s | appends | fsyncs |");
    println!("|---|---|---|---|---|---|---|");
    for r in &report.commit_latency {
        println!(
            "| {} | {} | {:.1} | {:.1} | {:.0} | {} | {} |",
            r.mode,
            r.txns,
            r.mean_commit_micros,
            r.p99_commit_micros,
            r.commits_per_sec,
            r.wal_appends,
            r.wal_fsyncs
        );
    }
    println!();
    println!("| txns | checkpointed | records | bytes | recover ms | actions |");
    println!("|---|---|---|---|---|---|");
    for r in &report.recovery {
        println!(
            "| {} | {} | {} | {} | {:.2} | {} |",
            r.txns,
            r.checkpointed,
            r.log_records,
            r.log_bytes,
            r.recover_millis,
            r.recovered_actions
        );
    }
    println!();
    println!("fsync cost (mean commit, wal-fsync / none): {:.1}x", report.fsync_cost_ratio);
    println!(
        "checkpoint recovery speedup at largest history: {:.1}x",
        report.checkpoint_recovery_speedup
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out} ({} cells)", report.commit_latency.len() + report.recovery.len());
}
