//! Concurrency-control crossover benchmark: optimistic
//! (first-committer-wins) vs pessimistic locking on the same workloads.
//!
//! Two workloads bracket the design space:
//!
//! * **read-heavy / low contention** — a read-mostly mix over a wide
//!   uniform key space: most transactions are pure reads, a minority add
//!   one rmw. Conflicts are rare, so the cost that matters is the
//!   per-operation overhead: optimistic reads are lock-free (no shard
//!   mutex, no lock state machine, no release pass at commit), so
//!   optimistic mode should win and keep winning as threads grow.
//! * **write-heavy / hot keys** — short all-rmw transactions over a
//!   Zipf-skewed key space. Conflicts are the common case: a locking
//!   transaction discovers the conflict at *first access* (NoWait) and
//!   aborts having done almost no work, while an optimistic one runs to
//!   completion and only then loses validation — wasted work that grows
//!   with concurrency, so locking should win here.
//!
//! Both arms run the identical seeded key sequence per rep; reps are
//! paired back-to-back and the pair with the median optimistic/locking
//! throughput ratio is reported (host-load drift cancels, same protocol
//! as the snapshot benchmark). The `cc_bench` binary renders the result
//! as `BENCH_cc.json`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnt_core::{CcMode, Db, DbConfig, DeadlockPolicy};
use rnt_sim::engine::ZipfSampler;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Wide key space for the low-contention workload.
const UNIFORM_KEYS: u64 = 4096;
/// Narrow key space for the hot-key workload.
const HOT_KEYS: u64 = 128;
/// Zipf exponent for the hot-key workload.
const ZIPF_S: f64 = 1.1;
/// Per-retry-batch bound handed to `run_with_retries`; a transaction that
/// exhausts it just starts a fresh batch (the quota counts successes).
const RETRY_BATCH: u32 = 256;
/// Fraction of read-heavy transactions that carry a write: 1 in
/// [`WRITE_1_IN`] transactions does 7 reads + 1 rmw, the rest are pure
/// 8-read transactions. Read-mostly is the canonical OCC-friendly shape —
/// a pure-read transaction validates against an untouched footprint and
/// releases nothing, while the locking arm still pays shard-lock
/// acquire/release per key.
const WRITE_1_IN: u64 = 8;

/// The two workload shapes (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// 8 uniform reads, 1 in [`WRITE_1_IN`] transactions converting the
    /// last read into an rmw, over [`UNIFORM_KEYS`].
    ReadHeavy,
    /// 4 Zipf-skewed rmws over [`HOT_KEYS`].
    WriteHot,
}

impl Workload {
    fn label(self) -> &'static str {
        match self {
            Workload::ReadHeavy => "read-heavy-uniform",
            Workload::WriteHot => "write-heavy-zipf",
        }
    }

    fn keys(self) -> u64 {
        match self {
            Workload::ReadHeavy => UNIFORM_KEYS,
            Workload::WriteHot => HOT_KEYS,
        }
    }
}

fn mode_label(mode: CcMode) -> &'static str {
    match mode {
        CcMode::Locking => "locking",
        CcMode::Optimistic => "optimistic",
    }
}

/// One measured cell of the sweep.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRow {
    /// Workload label: "read-heavy-uniform" or "write-heavy-zipf".
    pub workload: String,
    /// CC mode: "locking" or "optimistic".
    pub mode: String,
    /// Worker threads.
    pub threads: usize,
    /// Successful top-level transactions (the fixed per-run quota).
    pub txns: u64,
    /// Committed transactions per second (the headline quantity).
    pub commits_per_sec: f64,
    /// Lock-manager conflicts over the run (0 in optimistic mode).
    pub lock_conflicts: u64,
    /// Commit-time validation failures over the run (0 in locking mode).
    pub occ_conflicts: u64,
    /// Total aborts (each conflict of either kind aborts one attempt).
    pub aborts: u64,
}

/// Optimistic/locking throughput ratio for one (workload, threads) cell.
#[derive(Clone, Debug, Serialize)]
pub struct Speedup {
    /// Workload label.
    pub workload: String,
    /// Worker threads.
    pub threads: usize,
    /// optimistic commits/s divided by locking commits/s: > 1 means
    /// optimistic wins the cell.
    pub ratio: f64,
}

/// The full benchmark report serialized to `BENCH_cc.json`.
#[derive(Clone, Debug, Serialize)]
pub struct BenchReport {
    /// Report format marker.
    pub schema: String,
    /// `true` when produced by the reduced `--smoke` grid.
    pub smoke: bool,
    /// Host core count (context for absolute numbers).
    pub host_cores: usize,
    /// Every measured cell.
    pub rows: Vec<BenchRow>,
    /// Per-cell optimistic/locking ratios.
    pub speedups: Vec<Speedup>,
    /// The read-heavy ratio at the highest thread count — expected > 1
    /// (lock-free reads amortize the validator).
    pub headline_read_heavy: f64,
    /// The write-hot ratio at the highest thread count — expected < 1
    /// (optimistic wastes whole transactions per conflict; locking aborts
    /// at first access). Together with `headline_read_heavy` this is the
    /// crossover: neither mode dominates, the workload picks.
    pub headline_write_hot: f64,
}

fn db_for(mode: CcMode, workload: Workload, threads: usize) -> Db<u64, i64> {
    // NoWait + retry keeps the locking arm abort-based like the
    // optimistic one, so the comparison is conflict *placement* (first
    // access vs commit validation), not blocking vs aborting.
    let config = DbConfig::builder()
        .cc_mode(mode)
        .policy(DeadlockPolicy::NoWait)
        .shards(threads.max(1))
        .build();
    let db = Db::with_config(config);
    for k in 0..workload.keys() {
        db.insert(k, k as i64);
    }
    db
}

fn run_quota(db: &Db<u64, i64>, workload: Workload, quota: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = ZipfSampler::new(HOT_KEYS, ZIPF_S);
    for _ in 0..quota {
        loop {
            let done = match workload {
                Workload::ReadHeavy => {
                    let keys: Vec<u64> = (0..8).map(|_| rng.gen_range(0..UNIFORM_KEYS)).collect();
                    let writes = rng.gen_range(0..WRITE_1_IN) == 0;
                    db.run_with_retries(RETRY_BATCH, |t| {
                        let mut s = 0i64;
                        for key in &keys[..7] {
                            s += t.read(key)?;
                        }
                        if writes {
                            t.rmw(&keys[7], move |v| v + (s & 1))?;
                        } else {
                            s += t.read(&keys[7])?;
                            std::hint::black_box(s);
                        }
                        Ok(())
                    })
                }
                Workload::WriteHot => {
                    let keys: Vec<u64> = (0..4).map(|_| zipf.sample(&mut rng)).collect();
                    db.run_with_retries(RETRY_BATCH, |t| {
                        for key in &keys {
                            t.rmw(key, |v| v + 1)?;
                        }
                        Ok(())
                    })
                }
            };
            if done.is_ok() {
                break;
            }
        }
    }
}

/// Run one cell: `threads` workers each committing a fixed quota of
/// transactions; throughput is quota-over-wall-clock.
fn measure_once(
    mode: CcMode,
    workload: Workload,
    threads: usize,
    smoke: bool,
    seed: u64,
) -> BenchRow {
    let quota: usize = if smoke { 300 } else { 3000 };
    let db = Arc::new(db_for(mode, workload, threads));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|w| {
            let db = db.clone();
            std::thread::spawn(move || {
                run_quota(&db, workload, quota, seed ^ ((w as u64 + 1) << 8));
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let stats = db.stats();
    let txns = (threads * quota) as u64;
    BenchRow {
        workload: workload.label().into(),
        mode: mode_label(mode).into(),
        threads,
        txns,
        commits_per_sec: txns as f64 / secs,
        lock_conflicts: stats.conflicts,
        occ_conflicts: stats.occ_conflicts,
        aborts: stats.aborted,
    }
}

/// Measure one (workload, threads) cell as a paired locking/optimistic
/// comparison and report the median-ratio pair (see the module docs).
fn measure_pair(workload: Workload, threads: usize, smoke: bool) -> (BenchRow, BenchRow) {
    let reps = if smoke { 1 } else { 5 };
    let mut pairs: Vec<(BenchRow, BenchRow)> = (0..reps)
        .map(|rep| {
            let seed = 0xCC ^ (threads as u64) << 4 ^ (rep as u64) << 16;
            let l = measure_once(CcMode::Locking, workload, threads, smoke, seed);
            let o = measure_once(CcMode::Optimistic, workload, threads, smoke, seed);
            (l, o)
        })
        .collect();
    let ratio = |p: &(BenchRow, BenchRow)| p.1.commits_per_sec / p.0.commits_per_sec.max(1e-9);
    pairs.sort_by(|x, y| ratio(x).total_cmp(&ratio(y)));
    pairs.swap_remove(pairs.len() / 2)
}

/// Run the full sweep and assemble the report.
pub fn run_bench(smoke: bool) -> BenchReport {
    let thread_counts: &[usize] = if smoke { &[1, 8] } else { &[1, 4, 8] };
    let max_threads = *thread_counts.last().unwrap();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for workload in [Workload::ReadHeavy, Workload::WriteHot] {
        for &threads in thread_counts {
            eprintln!("cc bench: {} x {threads} threads...", workload.label());
            let (l, o) = measure_pair(workload, threads, smoke);
            speedups.push(Speedup {
                workload: workload.label().into(),
                threads,
                ratio: o.commits_per_sec / l.commits_per_sec.max(1e-9),
            });
            rows.push(l);
            rows.push(o);
        }
    }
    let headline = |label: &str, speedups: &[Speedup]| {
        speedups
            .iter()
            .find(|s| s.workload == label && s.threads == max_threads)
            .map(|s| s.ratio)
            .unwrap_or(0.0)
    };
    let headline_read_heavy = headline(Workload::ReadHeavy.label(), &speedups);
    let headline_write_hot = headline(Workload::WriteHot.label(), &speedups);
    BenchReport {
        schema: "rnt-bench/cc-mode/v1".into(),
        smoke,
        host_cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        rows,
        speedups,
        headline_read_heavy,
        headline_write_hot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_covers_every_cell() {
        let report = run_bench(true);
        // 2 workloads x 2 thread counts x 2 modes.
        assert_eq!(report.rows.len(), 8);
        assert_eq!(report.speedups.len(), 4);
        assert!(report.rows.iter().all(|r| r.txns > 0 && r.commits_per_sec > 0.0));
        // Mode purity: each arm only ever pays its own conflict kind.
        assert!(report.rows.iter().filter(|r| r.mode == "locking").all(|r| r.occ_conflicts == 0));
        assert!(report
            .rows
            .iter()
            .filter(|r| r.mode == "optimistic")
            .all(|r| r.lock_conflicts == 0));
        assert!(report.headline_read_heavy.is_finite() && report.headline_read_heavy > 0.0);
        assert!(report.headline_write_hot.is_finite() && report.headline_write_hot > 0.0);
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        assert!(json.contains("cc-mode"));
    }
}
