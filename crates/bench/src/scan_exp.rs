//! Range-scan benchmark: lock-free snapshot range walks vs locked
//! transactional range walks over the ordered keyspace, under write
//! churn.
//!
//! Two background writer threads hammer a Zipf-skewed key space with
//! `rmw` transactions while N scanner threads sweep random key windows.
//! Both arms execute the *same* generic code — a helper written once
//! against [`rnt_core::ReadView`] — so the measured difference is purely
//! the read surface underneath: a read-only transaction per window
//! (read locks through the lock manager, colliding with writer-held
//! write locks) or a pinned snapshot per window (the sharded ordered
//! index, zero locks). Each rep runs the two arms back-to-back with the
//! same seed and the pair with the median throughput ratio is reported,
//! cancelling host-load drift (same protocol as the snapshot-read
//! benchmark). The `scan_bench` binary renders the result as
//! `BENCH_scan.json`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnt_core::{Db, DbConfig, DeadlockPolicy, ReadView, TxnError};
use rnt_sim::engine::ZipfSampler;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Ordered keyspace size.
const KEYS: u64 = 512;
/// Keys each scan window covers.
const SPAN: u64 = 64;
/// Zipf exponent for the background writers.
const ZIPF_S: f64 = 1.1;
/// Background writer threads (fixed; the sweep varies scanners).
const WRITERS: usize = 2;

/// How a scanner arm walks its windows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanMode {
    /// A read-only transaction per window: a read lock per key, through
    /// the lock manager.
    Locked,
    /// A pinned snapshot per window: the lock-free ordered index.
    Snapshot,
}

impl ScanMode {
    fn label(self) -> &'static str {
        match self {
            ScanMode::Locked => "locked",
            ScanMode::Snapshot => "snapshot",
        }
    }
}

/// The whole benchmark kernel, written once against the unified read
/// API and instantiated at both surfaces.
fn sweep_window<V: ReadView<u64, i64>>(view: &V, lo: u64) -> Result<(i64, u64), TxnError> {
    let entries = view.range(lo..lo + SPAN)?;
    let n = entries.len() as u64;
    Ok((entries.into_iter().map(|(_, v)| v).sum(), n))
}

/// One measured cell of the sweep.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRow {
    /// Scan mode: "locked" or "snapshot".
    pub mode: String,
    /// Scanner threads (writers ride on top).
    pub scanners: usize,
    /// Background writer threads.
    pub writers: usize,
    /// Scan windows completed across all scanners.
    pub scans: u64,
    /// Entries returned across all windows.
    pub entries: u64,
    /// Entries per second (the headline quantity).
    pub entries_per_sec: f64,
    /// Windows per second.
    pub scans_per_sec: f64,
    /// Writer transactions committed during the scan window.
    pub writer_commits: u64,
    /// Writer commits per second over the scan window.
    pub writer_commits_per_sec: f64,
    /// Lock conflicts observed engine-wide over the window.
    pub conflicts: u64,
    /// Range scans counted by the engine (both surfaces bump it).
    pub range_scans: u64,
    /// Versions reclaimed by epoch GC during the window.
    pub versions_reclaimed: u64,
}

/// Snapshot/locked scan-throughput ratio at one scanner count.
#[derive(Clone, Debug, Serialize)]
pub struct Speedup {
    /// Scanner threads.
    pub scanners: usize,
    /// snapshot entries/s divided by locked entries/s.
    pub ratio: f64,
}

/// The full benchmark report serialized to `BENCH_scan.json`.
#[derive(Clone, Debug, Serialize)]
pub struct BenchReport {
    /// Report format marker.
    pub schema: String,
    /// `true` when produced by the reduced `--smoke` grid.
    pub smoke: bool,
    /// Host core count (context for absolute numbers).
    pub host_cores: usize,
    /// Every measured cell.
    pub rows: Vec<BenchRow>,
    /// Per-scanner-count snapshot/locked ratios.
    pub speedups: Vec<Speedup>,
    /// The ratio at the highest scanner count.
    pub headline_speedup: f64,
}

fn db_for(threads: usize) -> Db<u64, i64> {
    let config = DbConfig::builder().policy(DeadlockPolicy::NoWait).shards(threads.max(1)).build();
    let db = Db::with_config(config);
    for k in 0..KEYS {
        db.insert(k, k as i64);
    }
    db
}

/// Run one cell: writers churn until the scanners finish their quota.
fn measure_once(mode: ScanMode, scanners: usize, smoke: bool, seed: u64) -> BenchRow {
    let scans_per_scanner: usize = if smoke { 200 } else { 2000 };

    let db = db_for(scanners + WRITERS);
    let stop = Arc::new(AtomicBool::new(false));
    let commits_before = db.stats().committed;

    let mut writer_handles = Vec::new();
    for w in 0..WRITERS {
        let db = db.clone();
        let stop = stop.clone();
        let mut rng = StdRng::seed_from_u64(seed ^ (w as u64 + 1) << 8);
        writer_handles.push(std::thread::spawn(move || {
            let zipf = ZipfSampler::new(KEYS, ZIPF_S);
            while !stop.load(Ordering::Relaxed) {
                let key = zipf.sample(&mut rng);
                let _ = db.run_with_retries(64, |t| t.rmw(&key, |v| v + 1));
            }
        }));
    }

    let start = Instant::now();
    let mut scanner_handles = Vec::new();
    for r in 0..scanners {
        let db = db.clone();
        let mut rng = StdRng::seed_from_u64(seed ^ (r as u64 + 1) << 24);
        scanner_handles.push(std::thread::spawn(move || {
            let mut sum = 0i64;
            let mut entries = 0u64;
            for _ in 0..scans_per_scanner {
                let lo = rng.gen_range(0..KEYS - SPAN);
                match mode {
                    ScanMode::Locked => {
                        if let Ok((s, n)) = db.run_with_retries(64, |t| sweep_window(t, lo)) {
                            sum += s;
                            entries += n;
                        }
                    }
                    ScanMode::Snapshot => {
                        let snap = db.snapshot();
                        let (s, n) = sweep_window(&snap, lo).expect("snapshot scans never err");
                        sum += s;
                        entries += n;
                    }
                }
            }
            std::hint::black_box(sum);
            (scans_per_scanner as u64, entries)
        }));
    }

    let mut scans = 0u64;
    let mut entries = 0u64;
    for h in scanner_handles {
        let (s, e) = h.join().expect("scanner");
        scans += s;
        entries += e;
    }
    let elapsed = start.elapsed();
    stop.store(true, Ordering::Relaxed);
    for h in writer_handles {
        h.join().expect("writer");
    }

    let stats = db.stats();
    let secs = elapsed.as_secs_f64().max(1e-9);
    let writer_commits = stats.committed - commits_before;
    BenchRow {
        mode: mode.label().into(),
        scanners,
        writers: WRITERS,
        scans,
        entries,
        entries_per_sec: entries as f64 / secs,
        scans_per_sec: scans as f64 / secs,
        writer_commits,
        writer_commits_per_sec: writer_commits as f64 / secs,
        conflicts: stats.conflicts,
        range_scans: stats.range_scans,
        versions_reclaimed: stats.versions_reclaimed,
    }
}

/// Measure one scanner count as a paired locked/snapshot comparison and
/// report the median-ratio pair (see the module docs).
fn measure_pair(scanners: usize, smoke: bool) -> (BenchRow, BenchRow) {
    let reps = if smoke { 1 } else { 5 };
    let mut pairs: Vec<(BenchRow, BenchRow)> = (0..reps)
        .map(|rep| {
            let seed = 0x5CA9 ^ scanners as u64 ^ (rep as u64) << 16;
            let l = measure_once(ScanMode::Locked, scanners, smoke, seed);
            let s = measure_once(ScanMode::Snapshot, scanners, smoke, seed);
            (l, s)
        })
        .collect();
    let ratio = |p: &(BenchRow, BenchRow)| p.1.entries_per_sec / p.0.entries_per_sec.max(1e-9);
    pairs.sort_by(|x, y| ratio(x).total_cmp(&ratio(y)));
    pairs.swap_remove(pairs.len() / 2)
}

/// Run the full sweep and assemble the report.
pub fn run_bench(smoke: bool) -> BenchReport {
    let scanner_counts: &[usize] = if smoke { &[1, 8] } else { &[1, 4, 8] };
    let max_scanners = *scanner_counts.last().unwrap();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &scanners in scanner_counts {
        eprintln!("scan bench: {scanners} scanner(s)...");
        let (l, s) = measure_pair(scanners, smoke);
        speedups.push(Speedup { scanners, ratio: s.entries_per_sec / l.entries_per_sec.max(1e-9) });
        rows.push(l);
        rows.push(s);
    }
    let headline_speedup =
        speedups.iter().find(|s| s.scanners == max_scanners).map(|s| s.ratio).unwrap_or(0.0);
    BenchReport {
        schema: "rnt-bench/range-scan/v1".into(),
        smoke,
        host_cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        rows,
        speedups,
        headline_speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_covers_every_cell() {
        let report = run_bench(true);
        // 2 modes x 2 scanner counts.
        assert_eq!(report.rows.len(), 4);
        assert_eq!(report.speedups.len(), 2);
        assert!(report.rows.iter().all(|r| r.scans > 0));
        // Snapshot windows never abort, so they return every key in the
        // window; the engine counts a range scan per window either way.
        let snapshot_rows: Vec<_> = report.rows.iter().filter(|r| r.mode == "snapshot").collect();
        assert!(snapshot_rows.iter().all(|r| r.entries == r.scans * SPAN));
        assert!(report.rows.iter().all(|r| r.range_scans >= r.scans));
        assert!(report.headline_speedup.is_finite() && report.headline_speedup > 0.0);
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        assert!(json.contains("range-scan"));
    }
}
