//! Cluster scaling benchmark: the sharded multi-node engine
//! ([`rnt_cluster::Cluster`]) against a raw single-node [`Db`] on the
//! same workloads, same seeds, same binary — the runtime counterpart of
//! the paper's §9 claim that the distributed algebra composes without
//! changing the transaction surface.
//!
//! Two mixes bracket the routing cost:
//!
//! * **read-mostly** — 8 reads per transaction drawn from one home
//!   node's key bucket, 1-in-8 transactions carrying one rmw there (the
//!   cc-bench 90/10 shape with shard locality). This is the traffic a
//!   partitioned deployment is laid out for: each transaction runs
//!   against a single node's lock manager and commit pipeline, and only
//!   the occasional write commit touches shared cluster state.
//! * **cross-write** — 4 uniform rmws per transaction; with keys hashed
//!   across N nodes almost every commit has remote participants, so the
//!   gossip path (status deliveries, remote lock release) is on the
//!   critical path of every transaction.
//!
//! Arms: `db` (a plain [`Db`], the no-routing floor) and `cluster-N`
//! for N ∈ {1, 2, 4, 8} in-process nodes under eager gossip. All arms
//! run the same closed-loop worker count and per-worker quota, NoWait +
//! retry, durability off, tracing off. Each cell reports throughput and
//! gossip traffic; the summary carries cluster-N/cluster-1 scaling
//! ratios (the headline) and the cluster-1/db routing overhead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnt_cluster::{Cluster, ClusterConfig, GossipPolicy};
use rnt_core::{Db, DbConfig, DeadlockPolicy};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Key-space size (uniform, seeded to 0).
const KEYS: u64 = 4096;
/// Per-retry-batch bound handed to the retry loops.
const RETRY_BATCH: u32 = 256;
/// 1 in this many read-mostly transactions carries a write.
const WRITE_1_IN: u64 = 8;
/// Closed-loop worker threads on every arm.
const THREADS: usize = 8;

/// The two workload mixes (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mix {
    /// 8 node-local reads, 1-in-[`WRITE_1_IN`] with a trailing rmw.
    ReadMostly,
    /// 4 uniform rmws — nearly every commit crosses nodes.
    CrossWrite,
}

impl Mix {
    fn label(self) -> &'static str {
        match self {
            Mix::ReadMostly => "read-mostly",
            Mix::CrossWrite => "cross-write",
        }
    }
}

/// One measured cell of the sweep.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRow {
    /// Mix label: "read-mostly" or "cross-write".
    pub mix: String,
    /// Arm label: "db" or "cluster-N".
    pub arm: String,
    /// Node count (1 for the raw-`Db` arm).
    pub nodes: usize,
    /// Closed-loop worker threads.
    pub threads: usize,
    /// Committed transactions (the fixed per-run quota).
    pub txns: u64,
    /// Committed transactions per second.
    pub commits_per_sec: f64,
    /// Status deliveries sent over the run (0 on the `db` arm).
    pub gossip_sends: u64,
    /// Summary entries shipped (eager gossip payload accounting).
    pub gossip_entries: u64,
}

/// Throughput ratio of one cluster size against the 1-node cluster.
#[derive(Clone, Debug, Serialize)]
pub struct Scaling {
    /// Mix label.
    pub mix: String,
    /// Cluster node count.
    pub nodes: usize,
    /// cluster-N ops/s over cluster-1 ops/s.
    pub vs_one_node: f64,
}

/// The full benchmark report serialized to `BENCH_cluster.json`.
#[derive(Clone, Debug, Serialize)]
pub struct BenchReport {
    /// Report format marker.
    pub schema: String,
    /// `true` when produced by the reduced `--smoke` grid.
    pub smoke: bool,
    /// Host core count (context for absolute numbers).
    pub host_cores: usize,
    /// Every measured cell.
    pub rows: Vec<BenchRow>,
    /// Per-mix cluster-N/cluster-1 ratios.
    pub scaling: Vec<Scaling>,
    /// cluster-1 over raw-`Db` throughput per mix — what the routing
    /// layer itself costs when there is nothing to route across.
    pub routing_overhead: Vec<Scaling>,
    /// How to read the scaling column on this host.
    pub note: String,
}

fn scaling_note(host_cores: usize) -> String {
    if host_cores > 1 {
        "scaling.vs_one_node is cluster-N aggregate throughput over cluster-1; \
         on this multi-core host the shardable read-mostly mix can exceed 1.0 \
         as nodes spread work across cores."
            .into()
    } else {
        "single-core host: partitioning cannot add parallel headroom, so the \
         shardable read-mostly mix is expected to hold near 1.0 (per-core \
         efficiency retained as the keyspace shards) while cross-write pays \
         the gossip path on every commit."
            .into()
    }
}

fn node_config() -> DbConfig {
    DbConfig::builder().policy(DeadlockPolicy::NoWait).build()
}

/// One worker's closed loop against either arm, through a common
/// closure. `locality` holds the key space bucketed by home node (a
/// single bucket on the raw-`Db` arm): the read-mostly mix draws each
/// transaction's keys from one bucket — the sharding-friendly traffic a
/// partitioned deployment is laid out for — while the cross-write mix
/// draws uniformly, crossing nodes on nearly every commit.
fn run_quota<F>(mix: Mix, locality: &[Vec<u64>], quota: usize, seed: u64, mut run_txn: F)
where
    F: FnMut(&[u64], bool),
{
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..quota {
        match mix {
            Mix::ReadMostly => {
                let bucket = &locality[rng.gen_range(0..locality.len())];
                let keys: Vec<u64> =
                    (0..8).map(|_| bucket[rng.gen_range(0..bucket.len())]).collect();
                let writes = rng.gen_range(0..WRITE_1_IN) == 0;
                run_txn(&keys, writes);
            }
            Mix::CrossWrite => {
                let keys: Vec<u64> = (0..4).map(|_| rng.gen_range(0..KEYS)).collect();
                run_txn(&keys, true);
            }
        }
    }
}

fn measure_db(mix: Mix, quota: usize, seed: u64) -> BenchRow {
    let db: Arc<Db<u64, i64>> = Arc::new(Db::with_config(node_config()));
    for k in 0..KEYS {
        db.insert(k, 0);
    }
    let locality: Arc<Vec<Vec<u64>>> = Arc::new(vec![(0..KEYS).collect()]);
    let start = Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|w| {
            let db = db.clone();
            let locality = locality.clone();
            std::thread::spawn(move || {
                run_quota(mix, &locality, quota, seed ^ ((w as u64 + 1) << 8), |keys, writes| {
                    let ok = db.run_with_retries(RETRY_BATCH, |t| {
                        if writes {
                            let (last, reads) = keys.split_last().expect("non-empty");
                            let mut s = 0i64;
                            for key in reads {
                                s += t.read(key)?;
                            }
                            std::hint::black_box(s);
                            t.rmw(last, |v| v + 1)?;
                        } else {
                            let mut s = 0i64;
                            for key in keys {
                                s += t.read(key)?;
                            }
                            std::hint::black_box(s);
                        }
                        Ok(())
                    });
                    assert!(ok.is_ok(), "db arm retry loop exhausted");
                });
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let txns = (THREADS * quota) as u64;
    BenchRow {
        mix: mix.label().into(),
        arm: "db".into(),
        nodes: 1,
        threads: THREADS,
        txns,
        commits_per_sec: txns as f64 / secs,
        gossip_sends: 0,
        gossip_entries: 0,
    }
}

fn measure_cluster(mix: Mix, nodes: usize, quota: usize, seed: u64) -> BenchRow {
    let cluster: Cluster<u64, i64> = Cluster::new(
        ClusterConfig::new(nodes).gossip(GossipPolicy::EagerFull).node_config(node_config()),
    );
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); nodes];
    for k in 0..KEYS {
        cluster.insert(k, 0);
        buckets[cluster.partition().home(&k)].push(k);
    }
    let locality = Arc::new(buckets);
    let start = Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|w| {
            let cluster = cluster.clone();
            let locality = locality.clone();
            std::thread::spawn(move || {
                run_quota(mix, &locality, quota, seed ^ ((w as u64 + 1) << 8), |keys, writes| {
                    let ok = cluster.run_with_retries(RETRY_BATCH, |t| {
                        if writes {
                            let (last, reads) = keys.split_last().expect("non-empty");
                            let mut s = 0i64;
                            for key in reads {
                                s += t.get(key)?;
                            }
                            std::hint::black_box(s);
                            t.rmw(last, |v| v + 1)?;
                        } else {
                            let mut s = 0i64;
                            for key in keys {
                                s += t.get(key)?;
                            }
                            std::hint::black_box(s);
                        }
                        Ok(())
                    });
                    assert!(ok.is_ok(), "cluster arm retry loop exhausted");
                });
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    cluster.flush();
    let stats = cluster.stats();
    let txns = (THREADS * quota) as u64;
    BenchRow {
        mix: mix.label().into(),
        arm: format!("cluster-{nodes}"),
        nodes,
        threads: THREADS,
        txns,
        commits_per_sec: txns as f64 / secs,
        gossip_sends: stats.router.sends,
        gossip_entries: stats.router.entries_shipped,
    }
}

/// Run the full sweep and assemble the report. Cells are paired per rep
/// on the same seeds and the median-throughput rep is kept per cell.
pub fn run_bench(smoke: bool) -> BenchReport {
    let quota: usize = if smoke { 150 } else { 1500 };
    let reps = if smoke { 1 } else { 3 };
    let node_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let mixes = [Mix::ReadMostly, Mix::CrossWrite];

    let median = |mut rows: Vec<BenchRow>| -> BenchRow {
        rows.sort_by(|a, b| a.commits_per_sec.total_cmp(&b.commits_per_sec));
        rows.swap_remove(rows.len() / 2)
    };

    let mut rows = Vec::new();
    for mix in mixes {
        eprintln!("cluster bench: {} x db baseline...", mix.label());
        rows.push(median(
            (0..reps).map(|r| measure_db(mix, quota, 0x905 ^ (r as u64) << 16)).collect(),
        ));
        for &nodes in node_counts {
            eprintln!("cluster bench: {} x {nodes} nodes...", mix.label());
            rows.push(median(
                (0..reps)
                    .map(|r| measure_cluster(mix, nodes, quota, 0x905 ^ (r as u64) << 16))
                    .collect(),
            ));
        }
    }

    let cell = |mix: Mix, arm: &str| {
        rows.iter()
            .find(|r| r.mix == mix.label() && r.arm == arm)
            .map(|r| r.commits_per_sec)
            .unwrap_or(0.0)
    };
    let mut scaling = Vec::new();
    let mut routing_overhead = Vec::new();
    for mix in mixes {
        let one = cell(mix, "cluster-1").max(1e-9);
        for &nodes in node_counts {
            scaling.push(Scaling {
                mix: mix.label().into(),
                nodes,
                vs_one_node: cell(mix, &format!("cluster-{nodes}")) / one,
            });
        }
        routing_overhead.push(Scaling {
            mix: mix.label().into(),
            nodes: 1,
            vs_one_node: one / cell(mix, "db").max(1e-9),
        });
    }

    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    BenchReport {
        schema: "rnt-bench/cluster/v1".into(),
        smoke,
        host_cores,
        rows,
        scaling,
        routing_overhead,
        note: scaling_note(host_cores),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_covers_every_cell() {
        let report = run_bench(true);
        // 2 mixes x (1 db + 2 cluster sizes).
        assert_eq!(report.rows.len(), 6);
        assert_eq!(report.scaling.len(), 4);
        assert_eq!(report.routing_overhead.len(), 2);
        assert!(report.rows.iter().all(|r| r.txns > 0 && r.commits_per_sec > 0.0));
        // Cluster arms gossip on the cross-write mix; the db arm never.
        assert!(report.rows.iter().filter(|r| r.arm == "db").all(|r| r.gossip_sends == 0));
        assert!(report
            .rows
            .iter()
            .any(|r| r.mix == "cross-write" && r.nodes > 1 && r.gossip_sends > 0));
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        assert!(json.contains("cluster"));
    }
}
