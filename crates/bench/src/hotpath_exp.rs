//! Hot-path scaling benchmark: the pre-scaling internals
//! ([`HotPath::Legacy`] — one registry map under one lock, one shared
//! stats block, a fully locked pin table) against the scaled internals
//! ([`HotPath::Scaled`] — sharded registry, striped stats, lock-free
//! pins) on the same workloads, same seeds, same binary.
//!
//! Three workloads isolate the bottlenecks the scaling pass removed:
//!
//! * **read-heavy** — the cc-bench read-mostly mix (8 uniform reads,
//!   1-in-8 transactions carrying one rmw) under locking. Dominated by
//!   registry lookups, stats bumps, and per-access bookkeeping.
//! * **write-heavy** — short all-rmw Zipf transactions under locking:
//!   the conflict/abort machinery plus WAL-less commit bookkeeping.
//! * **snapshot-churn** — open a snapshot, read 8 keys, drop it, with
//!   1-in-8 iterations committing a small write so the watermark moves.
//!   Dominated by pin/unpin, the exact path the lock-free ring serves.
//!
//! Arms are paired per rep (legacy then scaled, identical seeds,
//! back-to-back so host-load drift cancels) and the pair with the median
//! scaled/legacy throughput ratio is reported — the same protocol as the
//! cc and snapshot benchmarks. Unlike those, every row also carries
//! p50/p99 operation latency: the trajectory's first latency numbers,
//! the seed for the ROADMAP's open-loop serving direction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnt_core::{CcMode, Db, DbConfig, DeadlockPolicy, HotPath};
use rnt_sim::engine::ZipfSampler;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Wide key space for the low-contention workloads.
const UNIFORM_KEYS: u64 = 4096;
/// Narrow key space for the hot-key workload.
const HOT_KEYS: u64 = 128;
/// Zipf exponent for the hot-key workload.
const ZIPF_S: f64 = 1.1;
/// Per-retry-batch bound handed to `run_with_retries`.
const RETRY_BATCH: u32 = 256;
/// 1 in this many read-heavy transactions (and snapshot-churn
/// iterations) carries a write.
const WRITE_1_IN: u64 = 8;

/// The three workload shapes (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// 8 uniform reads, 1-in-[`WRITE_1_IN`] with a trailing rmw.
    ReadHeavy,
    /// 4 Zipf-skewed rmws over [`HOT_KEYS`].
    WriteHeavy,
    /// Snapshot open + 8 reads + drop; 1-in-[`WRITE_1_IN`] iterations
    /// also commit a 1-rmw transaction to advance the watermark.
    SnapshotChurn,
}

impl Workload {
    fn label(self) -> &'static str {
        match self {
            Workload::ReadHeavy => "read-heavy",
            Workload::WriteHeavy => "write-heavy",
            Workload::SnapshotChurn => "snapshot-churn",
        }
    }

    fn keys(self) -> u64 {
        match self {
            Workload::WriteHeavy => HOT_KEYS,
            _ => UNIFORM_KEYS,
        }
    }
}

fn arm_label(arm: HotPath) -> &'static str {
    match arm {
        HotPath::Legacy => "legacy",
        HotPath::Scaled => "scaled",
    }
}

/// One measured cell of the sweep.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRow {
    /// Workload label: "read-heavy", "write-heavy" or "snapshot-churn".
    pub workload: String,
    /// Internals arm: "legacy" or "scaled".
    pub arm: String,
    /// Worker threads.
    pub threads: usize,
    /// Completed operations (committed transactions, or snapshots for
    /// the churn workload) — the fixed per-run quota.
    pub txns: u64,
    /// Operations per second (the headline quantity).
    pub commits_per_sec: f64,
    /// Median operation latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile operation latency, microseconds.
    pub p99_us: f64,
}

/// Scaled/legacy throughput ratio for one (workload, threads) cell.
#[derive(Clone, Debug, Serialize)]
pub struct Speedup {
    /// Workload label.
    pub workload: String,
    /// Worker threads.
    pub threads: usize,
    /// scaled ops/s divided by legacy ops/s: > 1 means the scaling pass
    /// pays for itself on the cell.
    pub ratio: f64,
}

/// The full benchmark report serialized to `BENCH_hotpath.json`.
#[derive(Clone, Debug, Serialize)]
pub struct BenchReport {
    /// Report format marker.
    pub schema: String,
    /// `true` when produced by the reduced `--smoke` grid.
    pub smoke: bool,
    /// Host core count (context for absolute numbers).
    pub host_cores: usize,
    /// Every measured cell.
    pub rows: Vec<BenchRow>,
    /// Per-cell scaled/legacy ratios.
    pub speedups: Vec<Speedup>,
    /// Geometric mean of the single-thread ratios across workloads —
    /// the serial-overhead verdict (parallel wins don't inflate it).
    pub geomean_single_thread: f64,
    /// The single-thread read-heavy ratio (the acceptance headline).
    pub headline_read_heavy_1t: f64,
    /// The worst ratio on the grid — anything below 0.95 means some
    /// workload regressed past the noise allowance.
    pub worst_ratio: f64,
}

fn db_for(arm: HotPath, workload: Workload, threads: usize) -> Db<u64, i64> {
    // NoWait + retry mirrors cc_exp's locking arm, keeping the two
    // benchmarks' absolute numbers comparable.
    let config = DbConfig::builder()
        .cc_mode(CcMode::Locking)
        .policy(DeadlockPolicy::NoWait)
        .shards(threads.max(1))
        .hot_path(arm)
        .build();
    let db = Db::with_config(config);
    for k in 0..workload.keys() {
        db.insert(k, k as i64);
    }
    db
}

/// Run one worker's quota, recording one latency sample (nanoseconds)
/// per completed operation, retries included.
fn run_quota(db: &Db<u64, i64>, workload: Workload, quota: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = ZipfSampler::new(HOT_KEYS, ZIPF_S);
    let mut latencies = Vec::with_capacity(quota);
    for i in 0..quota {
        let op_start = Instant::now();
        loop {
            let done = match workload {
                Workload::ReadHeavy => {
                    let keys: Vec<u64> = (0..8).map(|_| rng.gen_range(0..UNIFORM_KEYS)).collect();
                    let writes = rng.gen_range(0..WRITE_1_IN) == 0;
                    db.run_with_retries(RETRY_BATCH, |t| {
                        let mut s = 0i64;
                        for key in &keys[..7] {
                            s += t.read(key)?;
                        }
                        if writes {
                            t.rmw(&keys[7], move |v| v + (s & 1))?;
                        } else {
                            s += t.read(&keys[7])?;
                            std::hint::black_box(s);
                        }
                        Ok(())
                    })
                }
                Workload::WriteHeavy => {
                    let keys: Vec<u64> = (0..4).map(|_| zipf.sample(&mut rng)).collect();
                    db.run_with_retries(RETRY_BATCH, |t| {
                        for key in &keys {
                            t.rmw(key, |v| v + 1)?;
                        }
                        Ok(())
                    })
                }
                Workload::SnapshotChurn => {
                    let keys: Vec<u64> = (0..8).map(|_| rng.gen_range(0..UNIFORM_KEYS)).collect();
                    let snap = db.snapshot();
                    let mut s = 0i64;
                    for key in &keys {
                        s += snap.read(key).unwrap_or(0);
                    }
                    std::hint::black_box(s);
                    drop(snap);
                    if (i as u64).is_multiple_of(WRITE_1_IN) {
                        let key = keys[0];
                        db.run_with_retries(RETRY_BATCH, |t| {
                            t.rmw(&key, |v| v + 1)?;
                            Ok(())
                        })
                    } else {
                        Ok(())
                    }
                }
            };
            if done.is_ok() {
                break;
            }
        }
        latencies.push(op_start.elapsed().as_nanos() as u64);
    }
    latencies
}

fn percentile_us(sorted_nanos: &[u64], p: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_nanos.len() - 1) as f64 * p).round() as usize;
    sorted_nanos[idx] as f64 / 1000.0
}

/// Run one cell: `threads` workers each completing a fixed quota;
/// throughput is quota-over-wall-clock, latency the merged per-op
/// distribution.
fn measure_once(
    arm: HotPath,
    workload: Workload,
    threads: usize,
    smoke: bool,
    seed: u64,
) -> BenchRow {
    let quota: usize = if smoke { 300 } else { 3000 };
    let db = Arc::new(db_for(arm, workload, threads));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|w| {
            let db = db.clone();
            std::thread::spawn(move || {
                run_quota(&db, workload, quota, seed ^ ((w as u64 + 1) << 8))
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(threads * quota);
    for h in handles {
        latencies.extend(h.join().expect("worker"));
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    let txns = (threads * quota) as u64;
    BenchRow {
        workload: workload.label().into(),
        arm: arm_label(arm).into(),
        threads,
        txns,
        commits_per_sec: txns as f64 / secs,
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
    }
}

/// Measure one (workload, threads) cell as a paired legacy/scaled
/// comparison and report the median-ratio pair (see the module docs).
fn measure_pair(workload: Workload, threads: usize, smoke: bool) -> (BenchRow, BenchRow) {
    let reps = if smoke { 1 } else { 5 };
    let mut pairs: Vec<(BenchRow, BenchRow)> = (0..reps)
        .map(|rep| {
            let seed = 0x407 ^ (threads as u64) << 4 ^ (rep as u64) << 16;
            let l = measure_once(HotPath::Legacy, workload, threads, smoke, seed);
            let s = measure_once(HotPath::Scaled, workload, threads, smoke, seed);
            (l, s)
        })
        .collect();
    let ratio = |p: &(BenchRow, BenchRow)| p.1.commits_per_sec / p.0.commits_per_sec.max(1e-9);
    pairs.sort_by(|x, y| ratio(x).total_cmp(&ratio(y)));
    pairs.swap_remove(pairs.len() / 2)
}

/// Run the full sweep and assemble the report.
pub fn run_bench(smoke: bool) -> BenchReport {
    let thread_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 8] };
    let workloads = [Workload::ReadHeavy, Workload::WriteHeavy, Workload::SnapshotChurn];
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for workload in workloads {
        for &threads in thread_counts {
            eprintln!("hotpath bench: {} x {threads} threads...", workload.label());
            let (l, s) = measure_pair(workload, threads, smoke);
            speedups.push(Speedup {
                workload: workload.label().into(),
                threads,
                ratio: s.commits_per_sec / l.commits_per_sec.max(1e-9),
            });
            rows.push(l);
            rows.push(s);
        }
    }
    let single: Vec<f64> =
        speedups.iter().filter(|s| s.threads == 1).map(|s| s.ratio.max(1e-9)).collect();
    let geomean_single_thread =
        (single.iter().map(|r| r.ln()).sum::<f64>() / single.len().max(1) as f64).exp();
    let headline_read_heavy_1t = speedups
        .iter()
        .find(|s| s.workload == Workload::ReadHeavy.label() && s.threads == 1)
        .map(|s| s.ratio)
        .unwrap_or(0.0);
    let worst_ratio = speedups.iter().map(|s| s.ratio).fold(f64::INFINITY, f64::min);
    BenchReport {
        schema: "rnt-bench/hotpath/v1".into(),
        smoke,
        host_cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        rows,
        speedups,
        geomean_single_thread,
        headline_read_heavy_1t,
        worst_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_covers_every_cell() {
        let report = run_bench(true);
        // 3 workloads x 2 thread counts x 2 arms.
        assert_eq!(report.rows.len(), 12);
        assert_eq!(report.speedups.len(), 6);
        assert!(report.rows.iter().all(|r| r.txns > 0 && r.commits_per_sec > 0.0));
        // Latency percentiles are populated and ordered on every row.
        assert!(report.rows.iter().all(|r| r.p50_us > 0.0 && r.p99_us >= r.p50_us));
        assert!(report.geomean_single_thread.is_finite() && report.geomean_single_thread > 0.0);
        assert!(report.worst_ratio.is_finite() && report.worst_ratio > 0.0);
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        assert!(json.contains("hotpath"));
    }
}
