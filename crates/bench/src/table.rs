//! Result tables: the uniform output format of the experiment harness,
//! rendered as GitHub-flavoured markdown and serializable to JSON.

use serde::Serialize;

/// One experiment's result table.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Experiment id, e.g. "E2".
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells, one string per column.
    pub rows: Vec<Vec<String>>,
    /// One-line verdict comparing against the paper's claim.
    pub verdict: String,
}

impl Table {
    /// Start a table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            verdict: String::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in {}", self.id);
        self.rows.push(cells);
    }

    /// Set the verdict line.
    pub fn verdict(&mut self, verdict: impl Into<String>) {
        self.verdict = verdict.into();
    }

    /// Render as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        if !self.verdict.is_empty() {
            out.push_str(&format!("\n**Verdict:** {}\n", self.verdict));
        }
        out
    }
}

/// Shorthand: convert heterogeneous cells to strings.
#[macro_export]
macro_rules! cells {
    ($($cell:expr),+ $(,)?) => { vec![$(format!("{}", $cell)),+] };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("E0", "smoke", &["a", "b"]);
        t.row(cells!["1", 2]);
        t.verdict("fine");
        let md = t.to_markdown();
        assert!(md.contains("### E0 — smoke"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("**Verdict:** fine"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("E0", "smoke", &["a", "b"]);
        t.row(cells!["only one"]);
    }
}
