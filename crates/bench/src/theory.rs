//! Theory experiments E1–E3 and the Figures 1–3 diagram-chase harness:
//! every claim the paper *proves* is re-established by exhaustive
//! exploration and randomized checking.

use crate::cells;
use crate::table::Table;
use rnt_algebra::{
    check_local_mapping_on_run, check_possibilities_on_run, check_simulation_on_run, explore,
    Composed, ExploreConfig,
};
use rnt_distributed::{HDist, Level5, Topology};
use rnt_locking::{lemma16_invariants, HDoublePrime, HPrime, Level3, Level4};
use rnt_model::serial::is_data_serializable_bruteforce;
use rnt_model::{act, Universe, UniverseBuilder, UpdateFn};
use rnt_sim::aat_gen::random_aat;
use rnt_sim::gen::{random_run, random_universe, UniverseConfig};
use rnt_spec::{lemma10_invariants, HSpec, Level1, Level2};
use std::sync::Arc;

/// The fixed tiny universe used for exhaustive exploration: two top-level
/// actions with one access each on a shared object (non-commuting updates).
pub fn tiny_universe() -> Arc<Universe> {
    Arc::new(
        UniverseBuilder::new()
            .object(0, 1)
            .action(act![0])
            .access(act![0, 0], 0, UpdateFn::Add(1))
            .action(act![1])
            .access(act![1, 0], 0, UpdateFn::Mul(2))
            .build()
            .expect("tiny universe is valid"),
    )
}

/// A slightly larger universe with nesting and two objects (exhaustive at
/// levels 3–5 only in full mode).
pub fn nested_universe() -> Arc<Universe> {
    Arc::new(
        UniverseBuilder::new()
            .object(0, 1)
            .object(1, 0)
            .action(act![0])
            .action(act![0, 0])
            .access(act![0, 0, 0], 0, UpdateFn::Add(1))
            .access(act![0, 1], 1, UpdateFn::Write(5))
            .action(act![1])
            .access(act![1, 0], 0, UpdateFn::Mul(2))
            .build()
            .expect("nested universe is valid"),
    )
}

/// E1: Theorem 14 / 29 by exhaustion — every computable state of levels
/// 2–5 has perm(T) data-serializable, plus the Lemma 10/16 invariants.
pub fn e1_exhaustive(quick: bool) -> Table {
    let mut t = Table::new(
        "E1",
        "Theorem 14/29 by exhaustive exploration: perm(T) data-serializable at every computable state",
        &["level", "universe", "states", "transitions", "violations", "truncated"],
    );
    let cfg = ExploreConfig { max_states: if quick { 50_000 } else { 400_000 }, max_depth: 0 };
    let universes: Vec<(&str, Arc<Universe>)> = if quick {
        vec![("tiny", tiny_universe())]
    } else {
        vec![("tiny", tiny_universe()), ("nested", nested_universe())]
    };
    let mut total_violations = 0usize;
    for (name, u) in &universes {
        // Level 2.
        let alg = Level2::new(u.clone());
        let mut violations = 0;
        let report = explore(&alg, &cfg, |aat| {
            if !aat.perm().is_data_serializable(u) || lemma10_invariants(aat, u).is_err() {
                violations += 1;
            }
            Ok(())
        })
        .expect("invariant collected, not raised");
        t.row(cells![2, name, report.states, report.transitions, violations, report.truncated]);
        total_violations += violations;

        // Level 3.
        let alg = Level3::new(u.clone());
        let mut violations = 0;
        let report = explore(&alg, &cfg, |s| {
            if !s.aat.perm().is_data_serializable(u) || lemma16_invariants(s, u).is_err() {
                violations += 1;
            }
            Ok(())
        })
        .expect("collected");
        t.row(cells![3, name, report.states, report.transitions, violations, report.truncated]);
        total_violations += violations;

        // Level 4.
        let alg = Level4::new(u.clone());
        let mut violations = 0;
        let report = explore(&alg, &cfg, |s| {
            if !s.aat.perm().is_data_serializable(u) || s.vmap.well_formed(u).is_err() {
                violations += 1;
            }
            Ok(())
        })
        .expect("collected");
        t.row(cells![4, name, report.states, report.transitions, violations, report.truncated]);
        total_violations += violations;

        // Level 5 (2 nodes): check node knowledge stays sound by mapping
        // each state's component summaries against... full mapped replay is
        // E3's job; here we explore and count states.
        let topo = Arc::new(Topology::round_robin(u, 2));
        let alg = Level5::new(u.clone(), topo);
        let report = explore(&alg, &cfg, |_| Ok(())).expect("collected");
        t.row(cells![5, name, report.states, report.transitions, 0, report.truncated]);
    }
    t.verdict(if total_violations == 0 {
        "matches the paper: no computable state violates Theorem 14".to_string()
    } else {
        format!("MISMATCH: {total_violations} violating states found")
    });
    t
}

/// E2: Theorem 9 — the cycle-free characterization agrees with the
/// brute-force definition on random arbitrary AATs.
pub fn e2_theorem9(quick: bool) -> Table {
    let mut t = Table::new(
        "E2",
        "Theorem 9 characterization vs. brute-force definition on random AATs",
        &["corruption", "instances", "serializable", "violating", "disagreements"],
    );
    let n = if quick { 300 } else { 3000 };
    let cfg =
        UniverseConfig { objects: 2, top_actions: 2, max_fanout: 2, max_depth: 2, inner_prob: 0.4 };
    let mut total_disagreements = 0;
    for corrupt in [0.0, 0.2, 0.5] {
        let (mut ser, mut not, mut dis) = (0, 0, 0);
        for seed in 0..n {
            let u = random_universe(seed, &cfg);
            let aat = random_aat(&u, seed.wrapping_mul(2654435761), corrupt);
            let characterized = aat.is_data_serializable(&u);
            let brute = is_data_serializable_bruteforce(&aat, &u);
            if characterized != brute {
                dis += 1;
            }
            if brute {
                ser += 1;
            } else {
                not += 1;
            }
        }
        total_disagreements += dis;
        t.row(cells![format!("{corrupt:.1}"), n, ser, not, dis]);
    }
    t.verdict(if total_disagreements == 0 {
        "matches the paper: characterization ≡ definition on every instance".to_string()
    } else {
        format!("MISMATCH: {total_disagreements} disagreements")
    });
    t
}

/// E3: the simulation tower — random level-5 runs replay validly at levels
/// 4, 3, 2 and 1 through h''' , h'', h', h (Lemmas 15/17/20/28, Theorems
/// 21/29).
pub fn e3_simulation_chain(quick: bool) -> Table {
    let mut t = Table::new(
        "E3",
        "Simulation tower on random distributed runs (Theorem 29)",
        &["target level", "runs", "low events", "high events", "failures"],
    );
    let runs = if quick { 40 } else { 300 };
    let cfg =
        UniverseConfig { objects: 2, top_actions: 2, max_fanout: 2, max_depth: 2, inner_prob: 0.5 };
    let mut totals = [(0usize, 0usize, 0usize); 4]; // (low, high, failures) per target
    for seed in 0..runs {
        let u = Arc::new(random_universe(seed as u64, &cfg));
        let topo = Arc::new(Topology::round_robin(&u, 2));
        let l5 = Level5::new(u.clone(), topo.clone());
        let l4 = Level4::new(u.clone());
        let l3 = Level3::new(u.clone());
        let l2 = Level2::new(u.clone());
        let l1 = Level1::new(u.clone());
        let h = HDist::new(u.clone(), topo);
        let hdp = HDoublePrime::new(u.clone());
        let h54: Composed<'_, _, _, Level4> = Composed::new(&h, &hdp);
        let h53: Composed<'_, _, _, Level3> = Composed::new(&h54, &HPrime);
        let h52: Composed<'_, _, _, Level2> = Composed::new(&h53, &HSpec);
        let run = random_run(&l5, seed as u64 ^ 0xbeef, 40);
        let checks: [(usize, Result<rnt_algebra::SimulationReport, _>); 4] = [
            (0, check_simulation_on_run(&l5, &l4, &h, &run)),
            (1, check_simulation_on_run(&l5, &l3, &h54, &run)),
            (2, check_simulation_on_run(&l5, &l2, &h53, &run)),
            (3, check_simulation_on_run(&l5, &l1, &h52, &run)),
        ];
        for (i, res) in checks {
            match res {
                Ok(rep) => {
                    totals[i].0 += rep.low_steps;
                    totals[i].1 += rep.high_steps;
                }
                Err(_) => totals[i].2 += 1,
            }
        }
    }
    for (i, level) in [(0, 4), (1, 3), (2, 2), (3, 1)] {
        t.row(cells![level, runs, totals[i].0, totals[i].1, totals[i].2]);
    }
    let failures: usize = totals.iter().map(|t| t.2).sum();
    t.verdict(if failures == 0 {
        "matches the paper: every mapped run is valid at every level".to_string()
    } else {
        format!("MISMATCH: {failures} failed replays")
    });
    t
}

/// Figures 1–3: the commuting-diagram properties of possibilities mappings
/// (Figure 1) and local mappings (Figures 2–3), checked pointwise along
/// random runs for every mapping in the tower.
pub fn figures_diagram_chase(quick: bool) -> Table {
    let mut t = Table::new(
        "F1-F3",
        "Possibilities / local mapping diagram chases (paper Figures 1-3)",
        &["figure", "mapping", "runs", "steps checked", "failures"],
    );
    let runs = if quick { 30 } else { 200 };
    let cfg =
        UniverseConfig { objects: 2, top_actions: 2, max_fanout: 2, max_depth: 2, inner_prob: 0.5 };
    let mut rows: Vec<(String, String, usize, usize)> = vec![
        ("Fig.1".into(), "h  : A' -> A   (Lemma 15)".into(), 0, 0),
        ("Fig.1".into(), "h' : A'' -> A' (Lemma 17)".into(), 0, 0),
        ("Fig.1".into(), "h'': A'''-> A''(Lemma 20)".into(), 0, 0),
        ("Fig.2/3".into(), "h_i: B -> A''' (Lemmas 23-26)".into(), 0, 0),
    ];
    for seed in 0..runs {
        let u = Arc::new(random_universe(seed as u64, &cfg));
        // h on a level-2 run.
        let l2 = Level2::new(u.clone());
        let l1 = Level1::new(u.clone());
        let run = random_run(&l2, seed as u64, 25);
        match check_possibilities_on_run(&l2, &l1, &HSpec, &run) {
            Ok(rep) => rows[0].2 += rep.low_steps,
            Err(_) => rows[0].3 += 1,
        }
        // h' on a level-3 run.
        let l3 = Level3::new(u.clone());
        let run = random_run(&l3, seed as u64, 35);
        match check_possibilities_on_run(&l3, &l2, &HPrime, &run) {
            Ok(rep) => rows[1].2 += rep.low_steps,
            Err(_) => rows[1].3 += 1,
        }
        // h'' on a level-4 run.
        let l4 = Level4::new(u.clone());
        let hdp = HDoublePrime::new(u.clone());
        let run = random_run(&l4, seed as u64, 35);
        match check_possibilities_on_run(&l4, &l3, &hdp, &run) {
            Ok(rep) => rows[2].2 += rep.low_steps,
            Err(_) => rows[2].3 += 1,
        }
        // h_i on a level-5 run.
        let topo = Arc::new(Topology::round_robin(&u, 2));
        let l5 = Level5::new(u.clone(), topo.clone());
        let h = HDist::new(u.clone(), topo);
        let run = random_run(&l5, seed as u64, 35);
        match check_local_mapping_on_run(&l5, &l4, &h, &run) {
            Ok(rep) => rows[3].2 += rep.low_steps,
            Err(_) => rows[3].3 += 1,
        }
    }
    let mut failures = 0;
    for (fig, mapping, steps, fails) in rows {
        failures += fails;
        t.row(cells![fig, mapping, runs, steps, fails]);
    }
    t.verdict(if failures == 0 {
        "matches the paper: all diagram-chase properties (a)-(d) hold pointwise".to_string()
    } else {
        format!("MISMATCH: {failures} diagram failures")
    });
    t
}

/// E9: orphan-view consistency (the paper's §1/§10 open problem) — how
/// often does each level let an orphan see a view inconsistent with any
/// execution in which it is not an orphan?
pub fn e9_orphan_views(quick: bool) -> Table {
    use rnt_sim::orphan::check_orphan_views;
    let mut t = Table::new(
        "E9",
        "Orphan-view consistency across levels (Goree's property, executable)",
        &["system", "performs", "orphan performs", "anomalies", "live anomalies"],
    );
    let runs = if quick { 100 } else { 600 };
    let cfg =
        UniverseConfig { objects: 2, top_actions: 2, max_fanout: 2, max_depth: 3, inner_prob: 0.5 };
    let mut acc = [(0usize, 0usize, 0usize, 0usize); 3];
    for seed in 0..runs {
        let u = Arc::new(random_universe(seed as u64, &cfg));
        let l2 = Level2::new(u.clone());
        let run = random_run(&l2, seed as u64, 50);
        let r = check_orphan_views(&l2, &u, &run, |aat| aat);
        acc[0] = add4(acc[0], (r.performs, r.orphan_performs, r.anomalies, r.live_anomalies));
        let l3 = Level3::new(u.clone());
        let run = random_run(&l3, seed as u64, 50);
        let r = check_orphan_views(&l3, &u, &run, |st| &st.aat);
        acc[1] = add4(acc[1], (r.performs, r.orphan_performs, r.anomalies, r.live_anomalies));
        let l4 = Level4::new(u.clone());
        let run = random_run(&l4, seed as u64, 50);
        let r = check_orphan_views(&l4, &u, &run, |st| &st.aat);
        acc[2] = add4(acc[2], (r.performs, r.orphan_performs, r.anomalies, r.live_anomalies));
    }
    for (i, name) in
        [(0, "level 2 (spec)"), (1, "level 3 (version locks)"), (2, "level 4 (value locks)")]
    {
        t.row(cells![name, acc[i].0, acc[i].1, acc[i].2, acc[i].3]);
    }
    // The engine, via audit replay.
    {
        use rnt_core::DbConfig;
        use rnt_sim::engine::{run_workload, seeded_db, KeyDist, TxnShape, Workload};
        let db = seeded_db(DbConfig::builder().audit(true).build(), 16);
        let w = Workload {
            threads: 4,
            txns_per_thread: if quick { 40 } else { 300 },
            ops_per_txn: 3,
            read_ratio: 0.4,
            keys: 16,
            dist: KeyDist::Uniform,
            shape: TxnShape::Nested { children: 3, depth: 2 },
            abort_prob: 0.2,
            exclusive_reads: false,
            op_abort_prob: 0.0,
            sorted_ops: false,
            seed: 5,
        };
        run_workload(&db, &w);
        let (performs, orphans, anomalies, live) =
            db.audit_log().expect("audit on").orphan_view_anomalies().expect("log ok");
        t.row(cells!["engine (rnt-core)", performs, orphans, anomalies, live]);
    }
    let live_total: usize = acc.iter().map(|a| a.3).sum();
    t.verdict(format!(
        "live performs are never anomalous (total live anomalies: {live_total}); the level-2          spec permits orphan anomalies while the locking levels pin orphans to lock-stack views          — matching the paper's remark that its conditions do not yet cover orphans' views"
    ));
    t
}

fn add4(
    a: (usize, usize, usize, usize),
    b: (usize, usize, usize, usize),
) -> (usize, usize, usize, usize) {
    (a.0 + b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3)
}

/// E10: Moss locking vs Reed-style timestamp ordering — how much
/// scheduling freedom does each implementation admit, and how often does
/// the timestamp scheduler reject work that locking would have serialized?
pub fn e10_schedulers(quick: bool) -> Table {
    use rnt_algebra::Algebra;
    use rnt_timestamp::LevelTo;
    let mut t = Table::new(
        "E10",
        "Locking (level 2) vs timestamp ordering (Reed-style): admitted schedules",
        &["universe", "level-2 states", "TO states", "L2-run events", "accepted by TO"],
    );
    let universes: Vec<(String, Arc<Universe>)> = {
        let mut v = vec![("tiny".to_string(), tiny_universe())];
        if !quick {
            v.push(("nested".to_string(), nested_universe()));
        }
        v
    };
    let cfg_explore =
        ExploreConfig { max_states: if quick { 60_000 } else { 500_000 }, max_depth: 0 };
    let runs = if quick { 60 } else { 400 };
    let mut shrank = true;
    for (name, u) in &universes {
        let l2 = Level2::new(u.clone());
        let r2 = explore(&l2, &cfg_explore, |_| Ok(())).expect("explored");
        let to = LevelTo::new(u.clone());
        let rto = explore(&to, &cfg_explore, |_| Ok(())).expect("explored");
        shrank &= rto.states <= r2.states;
        // Random level-2 runs replayed event-by-event under TO: what
        // fraction of events does the timestamp scheduler accept?
        let (mut total, mut accepted) = (0usize, 0usize);
        for seed in 0..runs {
            let run = random_run(&l2, seed as u64, 40);
            let mut state = to.initial();
            for e in &run {
                total += 1;
                match to.apply(&state, e) {
                    Some(next) => {
                        state = next;
                        accepted += 1;
                    }
                    None => break, // the transaction would abort-and-retry here
                }
            }
        }
        t.row(cells![name, r2.states, rto.states, total, accepted]);
    }
    t.verdict(if shrank {
        "expected shape: timestamp ordering admits a subset of locking's schedules (never blocks, but rejects late arrivals)".to_string()
    } else {
        "MISMATCH: TO admitted more states than locking".to_string()
    });
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_quick_to_is_subset() {
        let t = e10_schedulers(true);
        assert!(t.verdict.starts_with("expected"), "{}", t.verdict);
    }

    #[test]
    fn e9_quick_no_live_anomalies() {
        let t = e9_orphan_views(true);
        // Live-anomaly column must be all zeros.
        for row in &t.rows {
            assert_eq!(row[4], "0", "live anomaly in {row:?}");
        }
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn e1_quick_has_no_violations() {
        let t = e1_exhaustive(true);
        assert!(t.verdict.starts_with("matches"), "{}", t.verdict);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn e2_quick_agrees() {
        let t = e2_theorem9(true);
        assert!(t.verdict.starts_with("matches"), "{}", t.verdict);
    }

    #[test]
    fn e3_quick_valid() {
        let t = e3_simulation_chain(true);
        assert!(t.verdict.starts_with("matches"), "{}", t.verdict);
    }

    #[test]
    fn figures_quick_hold() {
        let t = figures_diagram_chase(true);
        assert!(t.verdict.starts_with("matches"), "{}", t.verdict);
    }
}
