//! E14: what group commit buys at the durable-commit bottleneck.
//!
//! Lemma 7 requires the log be *forced* before a top-level commit is
//! acked — it does not require one force per commit. Without the
//! pipeline, N committing threads serialize on N fsyncs and N publish-
//! mutex acquisitions; with it, a batch of commits shares one fsync and
//! one contiguous epoch run. This experiment measures durable commits/sec
//! on real files across a thread × `group_commit` grid, fsync path on
//! ([`Durability::WalFsync`]), and reports the speedup per thread count.
//!
//! The `commit_bench` binary renders the result as `BENCH_commit.json`,
//! the committed baseline for the group-commit path.

use rnt_core::{Db, DbConfig, Durability};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// One cell of the thread × mode grid.
#[derive(Clone, Debug, Serialize)]
pub struct CommitThroughputRow {
    /// Committing threads.
    pub threads: usize,
    /// Whether the group-commit pipeline was on.
    pub group_commit: bool,
    /// Top-level transactions durably committed over the window.
    pub commits: u64,
    /// Durable commits per second (whole run, all threads).
    pub commits_per_sec: f64,
    /// Fsyncs issued — one per commit without the pipeline, one per
    /// *batch* with it.
    pub wal_fsyncs: u64,
    /// Batches retired (0 with the pipeline off).
    pub commit_batches: u64,
    /// Mean commits per retired batch (1.0 with the pipeline off).
    pub batch_amortization: f64,
}

/// The full group-commit benchmark report (`BENCH_commit.json`).
#[derive(Clone, Debug, Serialize)]
pub struct CommitBenchReport {
    /// Report format marker.
    pub schema: String,
    /// `true` when produced by the reduced `--smoke` grid.
    pub smoke: bool,
    /// The thread × group_commit grid, fsync path on.
    pub grid: Vec<CommitThroughputRow>,
    /// commits/sec with the pipeline on over off, per thread count.
    pub speedup_by_threads: Vec<(usize, f64)>,
}

const KEYS: u64 = 256;

fn tmp_path(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("rnt-commit-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench tmp dir");
    dir.join(format!("{tag}.wal")).to_str().expect("utf8 path").to_string()
}

/// Run `threads` committers for `window`, each looping disjoint-key
/// top-level rmw+commit transactions against a real on-disk log with the
/// fsync path on, and count durable commits.
fn throughput(threads: usize, group_commit: bool, window: Duration) -> CommitThroughputRow {
    let path = tmp_path(&format!("grid-{threads}-{group_commit}"));
    let _ = std::fs::remove_file(&path);
    // max_batch = committer count: a full batch drains the moment the
    // last committer stages (the window is never waited out), and a
    // 50 µs straggler window keeps one descheduled thread from forcing
    // a short batch. With max_batch = 1 the window never applies, so
    // the single-thread cell pays no batching latency at all.
    let config = DbConfig::builder()
        .durability(Durability::WalFsync)
        .group_commit(group_commit)
        .max_batch(threads.max(1))
        .max_batch_wait(Duration::from_micros(50))
        .build();
    let db: Arc<Db<u64, i64>> = Arc::new(Db::open(&path, config).expect("open"));
    for k in 0..KEYS {
        db.insert(k, 0);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let start_line = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = db.clone();
            let stop = stop.clone();
            let start_line = start_line.clone();
            std::thread::spawn(move || {
                start_line.wait();
                let mut i = 0u64;
                let mut committed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Disjoint key stripes: the grid measures the commit
                    // pipeline, not lock contention.
                    let key =
                        (t as u64 * KEYS / threads as u64 + i % (KEYS / threads as u64)) % KEYS;
                    let txn = db.begin();
                    txn.rmw(&key, |v| v + 1).expect("rmw");
                    txn.commit().expect("commit");
                    committed += 1;
                    i += 1;
                }
                committed
            })
        })
        .collect();
    start_line.wait();
    let run_start = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let commits: u64 = handles.into_iter().map(|h| h.join().expect("committer")).sum();
    let elapsed = run_start.elapsed();
    let stats = db.stats();
    let _ = std::fs::remove_file(&path);
    CommitThroughputRow {
        threads,
        group_commit,
        commits,
        commits_per_sec: commits as f64 / elapsed.as_secs_f64(),
        wal_fsyncs: stats.wal_fsyncs,
        commit_batches: stats.commit_batches,
        batch_amortization: if stats.commit_batches > 0 {
            stats.commits_batched as f64 / stats.commit_batches as f64
        } else {
            1.0
        },
    }
}

/// Run the full (or `--smoke`) group-commit benchmark grid.
pub fn run_bench(smoke: bool) -> CommitBenchReport {
    let window = Duration::from_millis(if smoke { 300 } else { 2_000 });
    let thread_counts: &[usize] = &[1, 2, 4, 8];
    let mut grid = Vec::new();
    let mut speedup_by_threads = Vec::new();
    for &threads in thread_counts {
        let off = throughput(threads, false, window);
        let on = throughput(threads, true, window);
        let speedup =
            if off.commits_per_sec > 0.0 { on.commits_per_sec / off.commits_per_sec } else { 0.0 };
        speedup_by_threads.push((threads, speedup));
        grid.push(off);
        grid.push(on);
    }
    CommitBenchReport { schema: "rnt-bench/commit/v1".to_string(), smoke, grid, speedup_by_threads }
}
