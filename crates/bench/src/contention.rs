//! Multi-threaded lock-manager benchmark: targeted vs broadcast wakeups.
//!
//! Sweeps the wakeup mode against the seed's broadcast behaviour over a
//! grid of thread counts × contention profiles × deadlock policies, with
//! nested transactions (depth 2) so lock inheritance is on the hot path.
//! The `engine_bench` binary renders the result as `BENCH_engine.json`,
//! the committed trajectory baseline for the engine.
//!
//! The Broadcast cells reproduce the pre-targeted engine faithfully: the
//! same `notify_all`-per-release on the shard condvar plus the original
//! 500 µs poll slice, so "before" and "after" come from one harness.

use rnt_core::{DbConfig, DeadlockPolicy, StatsSnapshot, WakeupMode};
use rnt_sim::engine::{run_workload, seeded_db, KeyDist, TxnShape, Workload};
use serde::Serialize;
use std::time::Duration;

/// A contention profile of the sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Contention {
    /// Large uniform key space: conflicts are rare.
    Low,
    /// Small Zipf-skewed key space: most traffic hits a few hot keys.
    ZipfHigh,
}

impl Contention {
    fn label(self) -> &'static str {
        match self {
            Contention::Low => "low",
            Contention::ZipfHigh => "zipfian-high",
        }
    }
}

/// One measured cell of the grid.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRow {
    /// Wakeup mode: "targeted" or "broadcast".
    pub wakeups: String,
    /// Contention profile: "low" or "zipfian-high".
    pub contention: String,
    /// Deadlock policy name.
    pub policy: String,
    /// Worker threads.
    pub threads: usize,
    /// Top-level transactions committed.
    pub committed: u64,
    /// Top-level retries (extra `Db::run` attempts).
    pub retries: u64,
    /// Committed top-level transactions per second.
    pub throughput: f64,
    /// Times a transaction parked waiting for a lock.
    pub waits: u64,
    /// Wakeups where the awaited key's lock state had changed.
    pub wakeups_productive: u64,
    /// Wakeups where it had not (herd effects / slice expiry).
    pub wakeups_spurious: u64,
    /// Notifications issued by the release path.
    pub notifies: u64,
    /// Mean time parked per wait, in microseconds.
    pub avg_wait_micros: f64,
}

/// Targeted-vs-broadcast throughput ratio for one (contention, policy)
/// pair at the highest thread count.
#[derive(Clone, Debug, Serialize)]
pub struct Speedup {
    /// Contention profile.
    pub contention: String,
    /// Deadlock policy name.
    pub policy: String,
    /// Thread count the ratio is taken at.
    pub threads: usize,
    /// targeted throughput / broadcast throughput.
    pub ratio: f64,
}

/// The full benchmark report serialized to `BENCH_engine.json`.
#[derive(Clone, Debug, Serialize)]
pub struct BenchReport {
    /// Report format marker.
    pub schema: String,
    /// `true` when produced by the reduced `--smoke` grid.
    pub smoke: bool,
    /// Host core count (context for absolute numbers).
    pub host_cores: usize,
    /// Every measured cell.
    pub rows: Vec<BenchRow>,
    /// Per-policy targeted/broadcast ratios at max threads.
    pub speedups: Vec<Speedup>,
    /// Geometric-mean speedup over the waiting policies (Timeout,
    /// WaitDie, Detect) on the zipfian-high profile — NoWait never
    /// parks, so its cells are insensitive to the wakeup mode by
    /// construction and excluded from the headline.
    pub headline_speedup: f64,
}

const POLICIES: [DeadlockPolicy; 4] = [
    DeadlockPolicy::Timeout,
    DeadlockPolicy::WaitDie,
    DeadlockPolicy::Detect,
    DeadlockPolicy::NoWait,
];

fn workload(contention: Contention, threads: usize, smoke: bool, seed: u64) -> Workload {
    // Txn counts are sized so threads genuinely overlap: on a small host
    // the scheduler must preempt threads mid-transaction for conflicts to
    // arise at all, which takes runs of tens of milliseconds per cell.
    // Zipfian-high is a pure-write profile: with the sorted global
    // acquisition order and exclusive locks only, deadlock is impossible
    // by construction, so hot-key cells measure queueing and wakeups —
    // not each policy's deadlock-resolution churn. Shared-read locking
    // is exercised by the low-contention profile (and the test suite).
    let (keys, dist, read_ratio, txns) = match contention {
        Contention::Low => (4096, KeyDist::Uniform, 0.5, if smoke { 150 } else { 1500 }),
        Contention::ZipfHigh => (512, KeyDist::Zipf(1.1), 0.0, if smoke { 100 } else { 3000 }),
    };
    Workload {
        threads,
        txns_per_thread: txns,
        // 4 ops per leaf: longer hold times and deeper wait queues, so
        // the wakeup path (the measured quantity) dominates each cell.
        ops_per_txn: 4,
        read_ratio,
        keys,
        dist,
        // Depth-2 nesting: commit inheritance and ancestor-aware reads
        // sit on the hot path of every cell.
        shape: TxnShape::Nested { children: 2, depth: 2 },
        abort_prob: 0.0,
        exclusive_reads: false,
        op_abort_prob: 0.0,
        // Sorted key acquisition avoids genuine deadlocks, so the grid
        // measures lock-wait and wakeup behavior rather than each
        // policy's deadlock-resolution churn.
        sorted_ops: true,
        seed,
    }
}

fn config(mode: WakeupMode, policy: DeadlockPolicy) -> DbConfig {
    // 10 ms lock timeout (both modes): generous next to the observed
    // sub-millisecond waits, but short enough that a convoy on the
    // hottest key can't stall a cell for a whole run.
    //
    // One lock-table shard (both modes): broadcast's cost scales with
    // waiters per condvar, which in production is set by how many
    // contended keys share a shard (key count grows, shard count
    // doesn't). One shard over 512 keys models that concentration at
    // bench scale; targeted wakeups are per-key and don't care.
    let b = DbConfig::builder()
        .policy(policy)
        .wakeups(mode)
        .lock_timeout(Duration::from_millis(10))
        .shards(1);
    match mode {
        // The seed engine polled every 500 µs; keep that for the
        // "before" cells so the comparison is against the real baseline.
        WakeupMode::Broadcast => b.wait_slice(Duration::from_micros(500)).build(),
        // Targeted wakeups make the poll slice a pure fallback: a parked
        // waiter is woken by its key's gate, so the slice only bounds
        // how long a lost-wakeup bug could hide. Sleep the full timeout.
        WakeupMode::Targeted => b.wait_slice(Duration::from_millis(10)).build(),
    }
}

/// Measure one cell as a *paired* broadcast/targeted comparison.
///
/// Each rep runs the two modes back-to-back with the same seed, and the
/// pair with the median throughput ratio is reported. Single runs on a
/// small host are bistable (a cell either phase-locks into contention
/// or degenerates into near-serial execution), and host load drifts
/// between invocations; pairing cancels that common-mode noise out of
/// the ratio, and the median is robust to outliers in either direction.
fn measure_pair(
    contention: Contention,
    policy: DeadlockPolicy,
    threads: usize,
    smoke: bool,
) -> (BenchRow, BenchRow) {
    let reps = if smoke { 1 } else { 5 };
    let mut pairs: Vec<(BenchRow, BenchRow)> = (0..reps)
        .map(|rep| {
            let seed = 0xBE7C ^ threads as u64 ^ (rep as u64) << 16;
            let b = measure_once(WakeupMode::Broadcast, contention, policy, threads, smoke, seed);
            let t = measure_once(WakeupMode::Targeted, contention, policy, threads, smoke, seed);
            (b, t)
        })
        .collect();
    let ratio = |p: &(BenchRow, BenchRow)| p.1.throughput / p.0.throughput.max(1e-9);
    pairs.sort_by(|x, y| ratio(x).total_cmp(&ratio(y)));
    pairs.swap_remove(pairs.len() / 2)
}

fn measure_once(
    mode: WakeupMode,
    contention: Contention,
    policy: DeadlockPolicy,
    threads: usize,
    smoke: bool,
    seed: u64,
) -> BenchRow {
    let w = workload(contention, threads, smoke, seed);
    let db = seeded_db(config(mode, policy), w.keys);
    let r = run_workload(&db, &w);
    let s: StatsSnapshot = db.stats();
    BenchRow {
        wakeups: match mode {
            WakeupMode::Targeted => "targeted".into(),
            WakeupMode::Broadcast => "broadcast".into(),
        },
        contention: contention.label().into(),
        policy: format!("{policy:?}"),
        threads,
        committed: r.committed,
        retries: r.retries,
        throughput: r.throughput,
        waits: s.waits,
        wakeups_productive: s.wakeups_productive,
        wakeups_spurious: s.wakeups_spurious,
        notifies: s.notifies,
        avg_wait_micros: s.avg_wait_micros(),
    }
}

/// Run the full grid and assemble the report.
pub fn run_bench(smoke: bool) -> BenchReport {
    let thread_counts: &[usize] = if smoke { &[2, 8] } else { &[1, 2, 4, 8] };
    let max_threads = *thread_counts.last().unwrap();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for contention in [Contention::Low, Contention::ZipfHigh] {
        for policy in POLICIES {
            for &threads in thread_counts {
                eprintln!("bench: {} / {:?} / {} threads...", contention.label(), policy, threads);
                let (b, t) = measure_pair(contention, policy, threads, smoke);
                if threads == max_threads {
                    speedups.push(Speedup {
                        contention: contention.label().into(),
                        policy: format!("{policy:?}"),
                        threads,
                        ratio: t.throughput / b.throughput.max(1e-9),
                    });
                }
                rows.push(b);
                rows.push(t);
            }
        }
    }
    let waiting: Vec<f64> = speedups
        .iter()
        .filter(|s| s.contention == "zipfian-high" && s.policy != "NoWait")
        .map(|s| s.ratio)
        .collect();
    let headline_speedup =
        (waiting.iter().map(|r| r.ln()).sum::<f64>() / waiting.len() as f64).exp();

    BenchReport {
        schema: "rnt-bench/engine-contention/v1".into(),
        smoke,
        host_cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        rows,
        speedups,
        headline_speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_covers_every_cell() {
        let report = run_bench(true);
        // 2 modes x 2 contention profiles x 4 policies x 2 thread counts.
        assert_eq!(report.rows.len(), 32);
        assert_eq!(report.speedups.len(), 8);
        assert!(report.rows.iter().all(|r| r.committed > 0));
        assert!(report.headline_speedup.is_finite() && report.headline_speedup > 0.0);
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        assert!(json.contains("zipfian-high"));
    }
}
