//! Distributed experiment E8: gossip-policy sweeps over the level-5
//! algebra — traffic vs. progress for each summary-propagation strategy.

use crate::cells;
use crate::table::Table;
use rnt_distributed::{Level5, Topology};
use rnt_sim::gen::{random_universe, UniverseConfig};
use rnt_sim::gossip::{run_gossip, GossipConfig, GossipPolicy};
use std::sync::Arc;

/// E8: message counts and volumes per gossip policy, for 2–8 nodes.
pub fn e8_gossip(quick: bool) -> Table {
    let mut t = Table::new(
        "E8",
        "Distributed gossip policies: traffic to reach quiescence",
        &["nodes", "policy", "tx events", "sends", "entries shipped", "quiescent"],
    );
    let cfg = UniverseConfig {
        objects: 4,
        top_actions: if quick { 3 } else { 5 },
        max_fanout: 2,
        max_depth: 3,
        inner_prob: 0.5,
    };
    let seeds: Vec<u64> = if quick { vec![3, 7] } else { (0..10).collect() };
    let mut all_quiescent = true;
    for nodes in [2usize, 4, 8] {
        for policy in
            [GossipPolicy::EagerFull, GossipPolicy::DeltaOnChange, GossipPolicy::Periodic(8)]
        {
            let (mut tx, mut sends, mut entries, mut quiescent) = (0, 0, 0, true);
            for &seed in &seeds {
                let u = Arc::new(random_universe(seed, &cfg));
                let topo = Arc::new(Topology::round_robin(&u, nodes));
                let alg = Level5::new(u, topo);
                let (rep, _) = run_gossip(
                    &alg,
                    &GossipConfig { policy, seed, max_steps: 200_000, crash: None },
                );
                tx += rep.tx_events;
                sends += rep.sends;
                entries += rep.entries_shipped;
                quiescent &= rep.quiescent;
            }
            all_quiescent &= quiescent;
            t.row(cells![nodes, format!("{policy:?}"), tx, sends, entries, quiescent]);
        }
    }
    t.verdict(if all_quiescent {
        "expected shape: delta ships far fewer entries than eager; traffic grows with node count"
            .to_string()
    } else {
        "MISMATCH: some run failed to quiesce".to_string()
    });
    t
}

/// E8b: fail-stop crash of one node — the survivors still quiesce; the
/// crashed node's pending work never completes (resilience at the
/// distributed level: partial progress instead of global failure).
pub fn e8b_crash(quick: bool) -> Table {
    let mut t = Table::new(
        "E8b",
        "Fail-stop node crash: surviving progress and quiescence",
        &[
            "nodes",
            "crash after",
            "tx events (healthy)",
            "tx events (crashed)",
            "survivors quiesce",
        ],
    );
    let cfg = UniverseConfig {
        objects: 4,
        top_actions: if quick { 3 } else { 5 },
        max_fanout: 2,
        max_depth: 3,
        inner_prob: 0.5,
    };
    let seeds: Vec<u64> = if quick { vec![3, 7] } else { (0..10).collect() };
    let mut all_ok = true;
    for nodes in [2usize, 4] {
        for after in [0usize, 10, 40] {
            let (mut healthy_tx, mut crashed_tx, mut quiescent) = (0, 0, true);
            for &seed in &seeds {
                let mk = || {
                    let u = Arc::new(random_universe(seed, &cfg));
                    let topo = Arc::new(Topology::round_robin(&u, nodes));
                    Level5::new(u, topo)
                };
                let (h, _) = run_gossip(&mk(), &GossipConfig::new(GossipPolicy::EagerFull, seed));
                let (c, _) = run_gossip(
                    &mk(),
                    &GossipConfig {
                        policy: GossipPolicy::EagerFull,
                        seed,
                        max_steps: 200_000,
                        crash: Some((0, after)),
                    },
                );
                healthy_tx += h.tx_events;
                crashed_tx += c.tx_events;
                quiescent &= c.quiescent;
            }
            all_ok &= quiescent;
            t.row(cells![nodes, after, healthy_tx, crashed_tx, quiescent]);
        }
    }
    t.verdict(if all_ok {
        "expected shape: survivors always quiesce; later crashes cost less unfinished work"
            .to_string()
    } else {
        "MISMATCH: survivors failed to quiesce after a crash".to_string()
    });
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8b_quick_survivors_quiesce() {
        let t = e8b_crash(true);
        assert!(t.verdict.starts_with("expected"), "{}", t.verdict);
        assert_eq!(t.rows.len(), 6);
    }

    #[test]
    fn e8_quick_quiesces() {
        let t = e8_gossip(true);
        assert!(t.verdict.starts_with("expected"), "{}", t.verdict);
        assert_eq!(t.rows.len(), 9);
    }
}
