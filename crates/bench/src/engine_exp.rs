//! Engine experiments E4–E7: correctness under contention and failures,
//! throughput against baselines, the read/write-lock ablation, and the
//! resilience (abort-locality) benefit of nesting.

use crate::cells;
use crate::table::Table;
use rnt_core::{DbConfig, DeadlockPolicy};
use rnt_sim::engine::{run_workload, seeded_db, KeyDist, RunResult, TxnShape, Workload};

fn base_workload(quick: bool) -> Workload {
    Workload {
        threads: 4,
        txns_per_thread: if quick { 150 } else { 1500 },
        ops_per_txn: 4,
        read_ratio: 0.5,
        keys: 512,
        dist: KeyDist::Uniform,
        shape: TxnShape::Nested { children: 4, depth: 1 },
        abort_prob: 0.0,
        exclusive_reads: false,
        op_abort_prob: 0.0,
        sorted_ops: false,
        seed: 42,
    }
}

fn run(config: DbConfig, w: &Workload) -> RunResult {
    let db = seeded_db(config, w.keys);
    run_workload(&db, w)
}

/// E4: audited concurrent executions stay serializable across policies,
/// thread counts and failure rates.
pub fn e4_audit(quick: bool) -> Table {
    let mut t = Table::new(
        "E4",
        "Engine serializability audit (Theorem 14 on live executions)",
        &["policy", "threads", "abort %", "txns", "audit events", "serializable"],
    );
    let mut all_ok = true;
    for policy in [DeadlockPolicy::Detect, DeadlockPolicy::WaitDie, DeadlockPolicy::NoWait] {
        for (threads, abort_prob) in [(2, 0.0), (4, 0.1), (8, 0.25)] {
            let mut w = base_workload(quick);
            w.threads = threads;
            w.abort_prob = abort_prob;
            w.txns_per_thread = if quick { 25 } else { 200 };
            w.keys = 32; // contended, so the audit is adversarial
            let db = seeded_db(DbConfig::builder().audit(true).policy(policy).build(), w.keys);
            let r = run_workload(&db, &w);
            let log = db.audit_log().expect("audit on");
            let (universe, aat) = log.reconstruct().expect("well-formed log");
            let ok = aat.perm().is_rw_data_serializable(&universe);
            all_ok &= ok;
            t.row(cells![
                format!("{policy:?}"),
                threads,
                format!("{:.0}", abort_prob * 100.0),
                r.committed,
                log.len(),
                ok
            ]);
        }
    }
    t.verdict(if all_ok {
        "matches the paper: every audited execution is serializable".to_string()
    } else {
        "MISMATCH: serializability violated".to_string()
    });
    t
}

/// E4b: deterministic schedule sweep — seeded interleavings of logical
/// workers, each audited against the formal model (reproducible, unlike
/// OS-thread schedules).
pub fn e4b_schedule_sweep(quick: bool) -> Table {
    use rnt_sim::interleave::{run_interleaved, InterleaveConfig};
    let mut t = Table::new(
        "E4b",
        "Deterministic interleaving sweep: every seeded schedule serializable",
        &["workers", "seeds", "scheduler steps", "retries", "violations"],
    );
    let seeds = if quick { 25 } else { 200 };
    let mut all_ok = true;
    for workers in [2usize, 4, 8] {
        let (mut steps, mut retries, mut violations) = (0u64, 0u64, 0u64);
        for seed in 0..seeds {
            let cfg = InterleaveConfig {
                workers,
                txns_per_worker: 6,
                children: 2,
                ops_per_child: 2,
                keys: 6,
                read_ratio: 0.4,
                abort_prob: 0.15,
                seed,
            };
            let (db, r) = run_interleaved(&cfg);
            steps += r.steps;
            retries += r.retries;
            let (universe, aat) = db.audit_log().expect("audit on").reconstruct().expect("ok");
            if !aat.perm().is_rw_data_serializable(&universe) {
                violations += 1;
            }
        }
        all_ok &= violations == 0;
        t.row(cells![workers, seeds, steps, retries, violations]);
    }
    t.verdict(if all_ok {
        "matches the paper: every explored schedule is serializable".to_string()
    } else {
        "MISMATCH: non-serializable schedule found".to_string()
    });
    t
}

/// E5: throughput — serial vs flat 2PL vs nested, thread and contention
/// sweeps.
pub fn e5_throughput(quick: bool) -> Table {
    let mut t = Table::new(
        "E5",
        "Throughput: serial vs flat vs nested Moss locking",
        &["shape", "threads", "keys", "committed/s", "retries", "ops"],
    );
    // Equal work per top-level transaction: 16 operations, either flat or
    // split into 4 subtransactions of 4.
    let shapes: [(&str, TxnShape, u32); 3] = [
        ("serial", TxnShape::Serial, 16),
        ("flat", TxnShape::Flat, 16),
        ("nested 4x1", TxnShape::Nested { children: 4, depth: 1 }, 4),
    ];
    for (name, shape, ops) in &shapes {
        for threads in [1usize, 2, 4, 8] {
            let mut w = base_workload(quick);
            w.shape = *shape;
            w.ops_per_txn = *ops;
            w.threads = threads;
            let r = run(DbConfig::default(), &w);
            t.row(cells![name, threads, w.keys, format!("{:.0}", r.throughput), r.retries, r.ops]);
        }
    }
    // Contention sweep at 4 threads, equal-work shapes.
    for keys in [16u64, 256, 4096] {
        for (name, shape, ops) in &shapes[1..] {
            let mut w = base_workload(quick);
            w.shape = *shape;
            w.ops_per_txn = *ops;
            w.keys = keys;
            let r = run(DbConfig::default(), &w);
            t.row(cells![name, 4, keys, format!("{:.0}", r.throughput), r.retries, r.ops]);
        }
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    t.verdict(format!(
        "host has {cores} core(s): with a single core the thread sweep measures scheduling/contention          overhead rather than parallel speedup; the valid readings are the per-shape overhead ranking          (serial ≈ flat > nested, which pays ~5 registry transitions per 4 ops) and throughput falling          as the key space shrinks (contention)"
    ));
    t
}

/// E6: read/write locks vs the paper's simplified exclusive-only variant,
/// across read ratios.
pub fn e6_rw_vs_exclusive(quick: bool) -> Table {
    let mut t = Table::new(
        "E6",
        "Read/write locks (Moss full) vs exclusive-only (paper's simplified variant)",
        &["read %", "rw committed/s", "excl committed/s", "rw/excl"],
    );
    let mut last_ratio = 0.0;
    for read_pct in [0u32, 25, 50, 75, 95] {
        let mut w = base_workload(quick);
        w.read_ratio = read_pct as f64 / 100.0;
        w.keys = 64; // contended so locking mode matters
        let rw = run(DbConfig::default(), &w);
        w.exclusive_reads = true;
        let excl = run(DbConfig::default(), &w);
        let ratio = rw.throughput / excl.throughput.max(1e-9);
        last_ratio = ratio;
        t.row(cells![
            read_pct,
            format!("{:.0}", rw.throughput),
            format!("{:.0}", excl.throughput),
            format!("{:.2}x", ratio)
        ]);
    }
    t.verdict(format!(
        "expected shape: advantage grows with read share (at 95% reads: {last_ratio:.2}x)"
    ));
    t
}

/// E7: resilience — wasted work under a *per-operation* failure hazard.
/// Each completed operation fails its enclosing work unit with probability
/// q; flat transactions then redo all 16 operations, while nested shapes
/// redo only the failing subtransaction's 4 (or the failing subtree) —
/// the abort-locality benefit that motivates resilient nesting.
pub fn e7_resilience(quick: bool) -> Table {
    let mut t = Table::new(
        "E7",
        "Resilience: wasted work under a per-op failure hazard (abort locality)",
        &["shape", "op hazard %", "committed", "ops run", "ops committed", "waste ratio"],
    );
    let shapes: [(&str, TxnShape, u64); 3] = [
        ("flat (16 ops)", TxnShape::Flat, 16),
        ("nested 4x1 (4x4 ops)", TxnShape::Nested { children: 4, depth: 1 }, 4),
        ("nested 2x2 (4x4 ops)", TxnShape::Nested { children: 2, depth: 2 }, 4),
    ];
    let mut flat_waste_at_max = 0.0;
    let mut nested_waste_at_max = 0.0;
    for (name, shape, ops) in &shapes {
        for hazard_pct in [0u32, 1, 3, 6] {
            let mut w = base_workload(quick);
            w.shape = *shape;
            w.ops_per_txn = *ops as u32;
            w.op_abort_prob = hazard_pct as f64 / 100.0;
            w.txns_per_thread = if quick { 60 } else { 600 };
            let r = run(DbConfig::default(), &w);
            // Every committed top-level txn ran exactly 16 useful ops in
            // all three shapes; anything beyond that is redone work.
            let useful = r.committed * 16;
            let waste = r.ops as f64 / useful.max(1) as f64;
            if hazard_pct == 6 {
                match *name {
                    "flat (16 ops)" => flat_waste_at_max = waste,
                    "nested 4x1 (4x4 ops)" => nested_waste_at_max = waste,
                    _ => {}
                }
            }
            t.row(cells![name, hazard_pct, r.committed, r.ops, useful, format!("{waste:.2}")]);
        }
    }
    t.verdict(format!(
        "expected shape: nested wastes less redone work than flat as the hazard rises (at 6%: flat {flat_waste_at_max:.2} vs nested {nested_waste_at_max:.2})"
    ));
    t
}

/// E5b (ablation): deadlock policies compared on a deadlock-prone workload.
pub fn e5b_policies(quick: bool) -> Table {
    let mut t = Table::new(
        "E5b",
        "Deadlock-policy ablation on a contended read-write workload",
        &["policy", "committed/s", "retries", "deadlocks", "dies", "timeouts"],
    );
    for policy in [
        DeadlockPolicy::Detect,
        DeadlockPolicy::WaitDie,
        DeadlockPolicy::NoWait,
        DeadlockPolicy::Timeout,
    ] {
        let mut w = base_workload(quick);
        w.keys = 16;
        w.read_ratio = 0.2;
        w.txns_per_thread = if quick { 80 } else { 800 };
        let db = seeded_db(DbConfig::builder().policy(policy).build(), w.keys);
        let r = run_workload(&db, &w);
        let s = db.stats();
        t.row(cells![
            format!("{policy:?}"),
            format!("{:.0}", r.throughput),
            r.retries,
            s.deadlocks,
            s.dies,
            s.timeouts
        ]);
    }
    t.verdict("expected shape: all policies complete; NoWait trades retries for zero waiting");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_quick_serializable() {
        let t = e4_audit(true);
        assert!(t.verdict.starts_with("matches"), "{}", t.verdict);
    }

    #[test]
    fn e4b_quick_serializable() {
        let t = e4b_schedule_sweep(true);
        assert!(t.verdict.starts_with("matches"), "{}", t.verdict);
    }

    #[test]
    fn e5_quick_runs() {
        let t = e5_throughput(true);
        assert_eq!(t.rows.len(), 18);
    }

    #[test]
    fn e6_quick_runs() {
        let t = e6_rw_vs_exclusive(true);
        assert_eq!(t.rows.len(), 5);
    }

    #[test]
    fn e7_quick_runs() {
        let t = e7_resilience(true);
        assert_eq!(t.rows.len(), 12);
    }

    #[test]
    fn e5b_quick_runs() {
        let t = e5b_policies(true);
        assert_eq!(t.rows.len(), 4);
    }
}
