//! E12: durability cost and recovery speed.
//!
//! Two questions the WAL must answer with numbers:
//!
//! 1. **What does durability cost at commit time?** Commit latency across
//!    [`Durability::None`] / [`Durability::Wal`] / [`Durability::WalFsync`]
//!    on real files — the fsync-per-top-level-commit mode is the paper's
//!    Lemma-7 durability point made literal, and its latency is the price
//!    of acking only after the commit record is on disk.
//! 2. **How fast is recovery, and what does checkpointing buy?** Replay
//!    time as the log grows, with and without periodic checkpoint
//!    truncation.
//!
//! The `recovery_bench` binary renders the result as
//! `BENCH_recovery.json`, the committed baseline for the recovery path.

use rnt_core::{Db, DbConfig, Durability};
use serde::Serialize;
use std::time::{Duration, Instant};

/// One commit-latency cell.
#[derive(Clone, Debug, Serialize)]
pub struct CommitLatencyRow {
    /// Durability mode: "none", "wal", or "wal-fsync".
    pub mode: String,
    /// Top-level transactions committed.
    pub txns: u64,
    /// Mean commit latency in microseconds.
    pub mean_commit_micros: f64,
    /// 99th-percentile commit latency in microseconds.
    pub p99_commit_micros: f64,
    /// Committed top-level transactions per second (whole run).
    pub commits_per_sec: f64,
    /// WAL records appended over the run.
    pub wal_appends: u64,
    /// Fsyncs issued (one per top-level commit in wal-fsync mode, else 0).
    pub wal_fsyncs: u64,
}

/// One recovery-time cell.
#[derive(Clone, Debug, Serialize)]
pub struct RecoveryRow {
    /// Top-level transactions in the logged history.
    pub txns: u64,
    /// Whether periodic checkpoint truncation ran during the history.
    pub checkpointed: bool,
    /// Whole records in the log at crash time.
    pub log_records: usize,
    /// Log size in bytes at crash time.
    pub log_bytes: usize,
    /// Wall-clock recovery time in milliseconds.
    pub recover_millis: f64,
    /// Actions the engine reconstructed (replayed `Begin` records).
    pub recovered_actions: u64,
}

/// The full recovery benchmark report (`BENCH_recovery.json`).
#[derive(Clone, Debug, Serialize)]
pub struct RecoveryBenchReport {
    /// Report format marker.
    pub schema: String,
    /// `true` when produced by the reduced `--smoke` grid.
    pub smoke: bool,
    /// Commit-latency sweep across durability modes.
    pub commit_latency: Vec<CommitLatencyRow>,
    /// Recovery-time sweep across log sizes.
    pub recovery: Vec<RecoveryRow>,
    /// fsync-mode mean commit latency over no-log mean commit latency.
    pub fsync_cost_ratio: f64,
    /// Largest unchkpointed log's recovery time over its checkpointed
    /// twin's — what truncation buys at the biggest measured history.
    pub checkpoint_recovery_speedup: f64,
}

const KEYS: u64 = 256;

fn tmp_path(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("rnt-recovery-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench tmp dir");
    dir.join(format!("{tag}.wal")).to_str().expect("utf8 path").to_string()
}

fn config(durability: Durability, checkpoint_every: u64) -> DbConfig {
    DbConfig::builder().durability(durability).checkpoint_every(checkpoint_every).build()
}

/// One top-level transaction: a committed child rmw plus a top rmw, so
/// every commit exercises lock inheritance and logs 4 records.
fn one_txn(db: &Db<u64, i64>, i: u64) -> Duration {
    let t = db.begin();
    let c = t.child().expect("child");
    c.rmw(&(i % KEYS), |v| v + 1).expect("rmw");
    c.commit().expect("child commit");
    t.rmw(&((i + 7) % KEYS), |v| v + 1).expect("rmw");
    let start = Instant::now();
    t.commit().expect("top commit");
    start.elapsed()
}

fn commit_latency(mode: Durability, label: &str, txns: u64) -> CommitLatencyRow {
    let path = tmp_path(label);
    let _ = std::fs::remove_file(&path);
    let db: Db<u64, i64> = Db::open(&path, config(mode, 0)).expect("open");
    for k in 0..KEYS {
        db.insert(k, 0);
    }
    let mut commit_times: Vec<Duration> = Vec::with_capacity(txns as usize);
    let run_start = Instant::now();
    for i in 0..txns {
        commit_times.push(one_txn(&db, i));
    }
    let total = run_start.elapsed();
    commit_times.sort();
    let mean =
        commit_times.iter().map(|d| d.as_secs_f64()).sum::<f64>() / commit_times.len() as f64;
    let p99 = commit_times[(commit_times.len() * 99 / 100).min(commit_times.len() - 1)];
    let stats = db.stats();
    let _ = std::fs::remove_file(&path);
    CommitLatencyRow {
        mode: label.to_string(),
        txns,
        mean_commit_micros: mean * 1e6,
        p99_commit_micros: p99.as_secs_f64() * 1e6,
        commits_per_sec: txns as f64 / total.as_secs_f64(),
        wal_appends: stats.wal_appends,
        wal_fsyncs: stats.wal_fsyncs,
    }
}

fn recovery_time(txns: u64, checkpoint_every: u64) -> RecoveryRow {
    let tag = format!("recover-{txns}-{checkpoint_every}");
    let path = tmp_path(&tag);
    let _ = std::fs::remove_file(&path);
    {
        let db: Db<u64, i64> =
            Db::open(&path, config(Durability::Wal, checkpoint_every)).expect("open");
        for k in 0..KEYS {
            db.insert(k, 0);
        }
        for i in 0..txns {
            one_txn(&db, i);
        }
        // The db is dropped without fanfare: the log is the crash image.
    }
    let bytes = std::fs::read(&path).expect("log exists");
    let log_records = rnt_wal::faults::record_count(&bytes);
    let start = Instant::now();
    let recovered: Db<u64, i64> =
        Db::recover(&path, config(Durability::Wal, checkpoint_every)).expect("recover");
    let recover_millis = start.elapsed().as_secs_f64() * 1e3;
    let recovered_actions = recovered.stats().recovered_actions;
    let _ = std::fs::remove_file(&path);
    RecoveryRow {
        txns,
        checkpointed: checkpoint_every != 0,
        log_records,
        log_bytes: bytes.len(),
        recover_millis,
        recovered_actions,
    }
}

/// Run the full (or `--smoke`) recovery benchmark grid.
pub fn run_bench(smoke: bool) -> RecoveryBenchReport {
    let latency_txns: u64 = if smoke { 300 } else { 3000 };
    let commit_latency: Vec<CommitLatencyRow> = vec![
        commit_latency(Durability::None, "none", latency_txns),
        commit_latency(Durability::Wal, "wal", latency_txns),
        commit_latency(Durability::WalFsync, "wal-fsync", latency_txns),
    ];

    let sizes: &[u64] = if smoke { &[100, 500] } else { &[500, 2500, 10_000] };
    let mut recovery = Vec::new();
    for &txns in sizes {
        recovery.push(recovery_time(txns, 0));
        // Checkpoint every ~5% of the history. The +3 keeps the cadence
        // off the history length's divisors so the log ends mid-interval
        // with a realistic suffix, not freshly truncated.
        recovery.push(recovery_time(txns, txns / 20 + 3));
    }

    let none_mean = commit_latency[0].mean_commit_micros;
    let fsync_mean = commit_latency[2].mean_commit_micros;
    let last_pair = &recovery[recovery.len() - 2..];
    RecoveryBenchReport {
        schema: "rnt-bench/recovery/v1".to_string(),
        smoke,
        fsync_cost_ratio: if none_mean > 0.0 { fsync_mean / none_mean } else { 0.0 },
        checkpoint_recovery_speedup: if last_pair[1].recover_millis > 0.0 {
            last_pair[0].recover_millis / last_pair[1].recover_millis
        } else {
            0.0
        },
        commit_latency,
        recovery,
    }
}
