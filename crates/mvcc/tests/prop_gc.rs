//! Property tests for epoch-based reclamation.
//!
//! Over random workloads of publishes, pins, reads, and unpins:
//!
//! * **safety** — a read through a live pin always returns the committed
//!   state at the pinned epoch (so no version a live snapshot resolves to
//!   was ever reclaimed);
//! * **liveness** — once every pin drops, every chain shrinks back to
//!   length 1;
//! * **conservation** — `created - reclaimed` equals the number of
//!   versions currently held, at every step.

use proptest::prelude::*;
use rnt_mvcc::{MvccStore, GENESIS_EPOCH};
use std::collections::BTreeMap;

const KEYS: u64 = 6;

#[derive(Clone, Debug)]
enum Op {
    /// Commit a batch of writes (key, value) at the next epoch.
    Publish(Vec<(u64, i64)>),
    /// Open a snapshot (pin the watermark, capture the expected state).
    Pin,
    /// Read `key` through live pin `idx % live`, checking the shadow.
    Read { pin: usize, key: u64 },
    /// Range-scan `[lo, hi)` through live pin `idx % live`, checking the
    /// shadow filtered to the bounds in key order.
    RangeRead { pin: usize, lo: u64, hi: u64 },
    /// Drop live pin `idx % live`.
    Unpin(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => proptest::collection::vec((0..KEYS, -1000i64..1000), 1..4).prop_map(Op::Publish),
        2 => Just(Op::Pin),
        4 => (0usize..64, 0..KEYS).prop_map(|(pin, key)| Op::Read { pin, key }),
        2 => (0usize..64, 0..KEYS, 0..=KEYS).prop_map(|(pin, lo, hi)| Op::RangeRead { pin, lo, hi }),
        2 => (0usize..64).prop_map(Op::Unpin),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn gc_is_safe_live_and_conservative(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let store: MvccStore<u64, i64> = MvccStore::new(4);
        // Shadow of the committed state, updated at each publish.
        let mut committed: BTreeMap<u64, i64> = BTreeMap::new();
        for k in 0..KEYS {
            store.append(&k, GENESIS_EPOCH, 0);
            committed.insert(k, 0);
        }
        // Live pins with the state captured when they were taken.
        let mut pins: Vec<(u64, BTreeMap<u64, i64>)> = Vec::new();

        for op in ops {
            match op {
                Op::Publish(batch) => {
                    // One version per key per epoch: last write wins.
                    let merged: BTreeMap<u64, i64> = batch.into_iter().collect();
                    let publish = store.begin_publish();
                    for (k, v) in merged {
                        committed.insert(k, v);
                        store.append(&k, publish.epoch(), v);
                    }
                }
                Op::Pin => {
                    let epoch = store.pin();
                    pins.push((epoch, committed.clone()));
                }
                Op::Read { pin, key } => {
                    if !pins.is_empty() {
                        let (epoch, shadow) = &pins[pin % pins.len()];
                        // Safety: the pinned view never moves.
                        prop_assert_eq!(
                            store.read_at(&key, *epoch),
                            shadow.get(&key).copied(),
                            "pinned read diverged from the state at pin time"
                        );
                    }
                }
                Op::RangeRead { pin, lo, hi } => {
                    if !pins.is_empty() {
                        let hi = hi.max(lo); // empty, not inverted
                        let (epoch, shadow) = &pins[pin % pins.len()];
                        let expect: Vec<(u64, i64)> =
                            shadow.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                        // The ordered walk over the pinned view matches the
                        // shadow filtered to the bounds, in key order.
                        prop_assert_eq!(
                            store.range_at(lo..hi, *epoch),
                            expect,
                            "pinned range diverged from the state at pin time"
                        );
                    }
                }
                Op::Unpin(idx) => {
                    if !pins.is_empty() {
                        let (epoch, _) = pins.swap_remove(idx % pins.len());
                        store.unpin(epoch);
                    }
                }
            }
            // Conservation holds at every step.
            let c = store.counters();
            prop_assert_eq!(c.created - c.reclaimed, store.total_versions());
            prop_assert_eq!(c.pins_live, pins.len() as u64);
        }

        // Re-verify every surviving pin after the full workload.
        for (epoch, shadow) in &pins {
            for k in 0..KEYS {
                prop_assert_eq!(store.read_at(&k, *epoch), shadow.get(&k).copied());
            }
        }

        // Liveness: drop everything; chains collapse to length 1.
        for (epoch, _) in pins.drain(..) {
            store.unpin(epoch);
        }
        for (key, chain) in store.chains() {
            prop_assert_eq!(chain.len(), 1, "chain for {} not reclaimed: {:?}", key, chain);
            prop_assert_eq!(chain[0].1, committed[&key]);
        }
        let c = store.counters();
        prop_assert_eq!(c.created - c.reclaimed, KEYS);
        prop_assert_eq!(c.pins_live, 0);
    }
}
