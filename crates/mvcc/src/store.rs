//! The sharded version-chain store, the publish critical section, and
//! epoch-based reclamation.

use parking_lot::{Mutex, MutexGuard, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};

/// The epoch of non-transactional base seeds (the paper's `init(x)`).
///
/// Seeds enter every chain at the genesis epoch, so they are visible to
/// *every* snapshot regardless of when the key was inserted — seeding is
/// not a transaction and takes no place in the commit order.
pub const GENESIS_EPOCH: u64 = 0;

/// A committed version chain: `(epoch, value)` pairs in strictly
/// ascending epoch order. The last entry is the current committed value.
type Chain<V> = Vec<(u64, V)>;

/// One shard of the store: keys → version chains under a single lock.
type Shard<K, V> = RwLock<HashMap<K, Chain<V>>>;

/// Monotonic counters the store maintains (see [`MvccStore::counters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MvccCounters {
    /// Versions ever appended to a chain (commits + seeds).
    pub created: u64,
    /// Versions reclaimed by epoch-based GC.
    pub reclaimed: u64,
    /// Snapshots currently pinning an epoch.
    pub pins_live: u64,
}

/// The multi-version object store.
///
/// Keys map to [version chains](Chain) sharded like the engine's lock
/// table. Three pieces of epoch state tie the chains to the commit order:
///
/// * `watermark` — the highest *fully published* epoch: every commit with
///   epoch ≤ watermark has all its versions appended. Snapshots pin the
///   watermark, so a pin never dangles over a half-published commit.
/// * the **publish lock** — serializes top-level publication (epoch
///   assignment → chain appends → watermark advance) *and* pin creation.
///   Without it, a commit at epoch `w+1` could garbage-collect the
///   version a snapshot racing to pin `w` is about to need; with it, a
///   pin either lands before the publisher reads the pin set (and is
///   respected) or after the watermark advanced (and pins `w+1`).
/// * `min_pin` — cached minimum live pin (`u64::MAX` when none), read on
///   the append path so reclamation needs no pin-table lock.
///
/// **Reclamation rule**: a version may be dropped iff it has a successor
/// and the successor's epoch is ≤ the minimum live pin. (A pin `P` reads
/// the latest version with epoch ≤ `P`; a version whose successor is
/// already ≤ every pin can win that race for no pin — pins only grow, as
/// they always pin the current watermark.) With no pins this prunes every
/// chain to length 1 — liveness — and it never drops a version some live
/// pin still resolves to — safety. Both are property-tested.
pub struct MvccStore<K, V> {
    shards: Box<[Shard<K, V>]>,
    hasher: RandomState,
    /// Highest fully published epoch.
    watermark: AtomicU64,
    /// See the struct docs; held by [`MvccStore::begin_publish`] guards
    /// and briefly by [`MvccStore::pin`].
    publish: Mutex<()>,
    /// Live pins: epoch → snapshot count.
    pins: Mutex<BTreeMap<u64, u64>>,
    /// Cached minimum of `pins` (`u64::MAX` when empty).
    min_pin: AtomicU64,
    created: AtomicU64,
    reclaimed: AtomicU64,
}

/// An exclusive publication ticket for one top-level commit, returned by
/// [`MvccStore::begin_publish`]. Holds the publish lock; the commit
/// appends its versions at [`Publish::epoch`] and drops the ticket, which
/// advances the watermark — the instant the commit becomes visible to new
/// snapshots.
pub struct Publish<'a> {
    watermark: &'a AtomicU64,
    _guard: MutexGuard<'a, ()>,
    epoch: u64,
}

impl Publish<'_> {
    /// The commit epoch assigned to this publication.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for Publish<'_> {
    fn drop(&mut self) {
        // Publication is serialized, so this is always watermark + 1.
        self.watermark.store(self.epoch, Ordering::Release);
    }
}

/// An exclusive publication ticket for a *batch* of top-level commits,
/// returned by [`MvccStore::begin_publish_batch`]. Holds the publish lock
/// once for the whole batch; participant `i` (0-based) appends its
/// versions at [`PublishBatch::epoch_of(i)`](PublishBatch::epoch_of).
/// Dropping the ticket advances the watermark past the entire epoch run —
/// the batch becomes visible to new snapshots as one unit, never as a
/// prefix.
pub struct PublishBatch<'a> {
    watermark: &'a AtomicU64,
    _guard: MutexGuard<'a, ()>,
    base: u64,
    len: u64,
}

impl PublishBatch<'_> {
    /// The first epoch of the contiguous run.
    pub fn first_epoch(&self) -> u64 {
        self.base + 1
    }

    /// The epoch assigned to the `i`-th batch participant.
    ///
    /// # Panics
    /// If `i` is outside the batch.
    pub fn epoch_of(&self, i: usize) -> u64 {
        assert!((i as u64) < self.len, "participant {i} outside batch of {}", self.len);
        self.base + 1 + i as u64
    }

    /// The last epoch of the run (the watermark after publication).
    pub fn last_epoch(&self) -> u64 {
        self.base + self.len
    }
}

impl Drop for PublishBatch<'_> {
    fn drop(&mut self) {
        // Serialized like single publication: base was the watermark when
        // the ticket was taken, so this is a contiguous advance.
        self.watermark.store(self.base + self.len, Ordering::Release);
    }
}

/// Drop every superseded version whose successor is ≤ `min_pin`.
/// Successor epochs ascend along the chain, so the droppable set is a
/// prefix. Returns how many versions were dropped.
fn prune<V>(chain: &mut Chain<V>, min_pin: u64) -> u64 {
    let mut cut = 0;
    while cut + 1 < chain.len() && chain[cut + 1].0 <= min_pin {
        cut += 1;
    }
    chain.drain(..cut);
    cut as u64
}

impl<K, V> MvccStore<K, V>
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    /// An empty store with `shards` chain shards (at least 1).
    pub fn new(shards: usize) -> Self {
        MvccStore {
            shards: (0..shards.max(1)).map(|_| RwLock::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
            watermark: AtomicU64::new(GENESIS_EPOCH),
            publish: Mutex::new(()),
            pins: Mutex::new(BTreeMap::new()),
            min_pin: AtomicU64::new(u64::MAX),
            created: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &K) -> usize {
        (self.hasher.hash_one(key) as usize) % self.shards.len()
    }

    /// Enter the publish critical section for one top-level commit,
    /// assigning it the next epoch. Append the commit's versions with
    /// [`MvccStore::append`] at [`Publish::epoch`], then drop the ticket
    /// to advance the watermark.
    pub fn begin_publish(&self) -> Publish<'_> {
        let guard = self.publish.lock();
        let epoch = self.watermark.load(Ordering::Acquire) + 1;
        Publish { watermark: &self.watermark, _guard: guard, epoch }
    }

    /// Enter the publish critical section once for a batch of `n`
    /// top-level commits, allocating the contiguous epoch run
    /// `watermark+1 ..= watermark+n`. This is the group-commit
    /// amortization: one lock acquisition and one watermark advance for
    /// the whole batch, instead of `n` serialized publish cycles.
    ///
    /// # Panics
    /// If `n == 0` — an empty batch has no epochs to allocate.
    pub fn begin_publish_batch(&self, n: usize) -> PublishBatch<'_> {
        assert!(n > 0, "empty publish batch");
        let guard = self.publish.lock();
        let base = self.watermark.load(Ordering::Acquire);
        PublishBatch { watermark: &self.watermark, _guard: guard, base, len: n as u64 }
    }

    /// Append a version to `key`'s chain. `epoch` must be strictly above
    /// the chain's last (per-key publications are serialized by the lock
    /// manager, so callers get this for free). Reclaims any versions the
    /// append just made droppable.
    pub fn append(&self, key: &K, epoch: u64, value: V) {
        let mut shard = self.shards[self.shard_of(key)].write();
        let chain = shard.entry(key.clone()).or_default();
        debug_assert!(chain.last().is_none_or(|&(e, _)| e < epoch), "chain epochs must ascend");
        chain.push((epoch, value));
        self.created.fetch_add(1, Ordering::Relaxed);
        let dropped = prune(chain, self.min_pin.load(Ordering::Acquire));
        self.reclaimed.fetch_add(dropped, Ordering::Relaxed);
    }

    /// Pin the current watermark for a snapshot. Serialized against
    /// publishers (see the struct docs for why). Balance with
    /// [`MvccStore::unpin`].
    pub fn pin(&self) -> u64 {
        let _publish = self.publish.lock();
        let epoch = self.watermark.load(Ordering::Acquire);
        let mut pins = self.pins.lock();
        *pins.entry(epoch).or_insert(0) += 1;
        let min = *pins.keys().next().expect("just inserted");
        self.min_pin.store(min, Ordering::Release);
        epoch
    }

    /// Release a pin taken by [`MvccStore::pin`]. If the minimum live pin
    /// rose, sweep every chain — the liveness half of reclamation: once
    /// all snapshots drop, chains shrink back to length 1.
    pub fn unpin(&self, epoch: u64) {
        let min = {
            let mut pins = self.pins.lock();
            match pins.get_mut(&epoch) {
                Some(n) if *n > 1 => *n -= 1,
                Some(_) => {
                    pins.remove(&epoch);
                }
                None => debug_assert!(false, "unpin of an epoch never pinned"),
            }
            let min = pins.keys().next().copied().unwrap_or(u64::MAX);
            self.min_pin.store(min, Ordering::Release);
            min
        };
        // New pins land at the current watermark ≥ every successor epoch
        // already in a chain, so sweeping with this min cannot race a
        // concurrent pin into unsafety (only a publisher can introduce a
        // higher successor, and it prunes with its own min_pin read).
        self.sweep(min);
    }

    /// Drop every version reclaimable under `min_pin`, store-wide.
    fn sweep(&self, min_pin: u64) {
        let mut dropped = 0;
        for shard in self.shards.iter() {
            let mut shard = shard.write();
            for chain in shard.values_mut() {
                dropped += prune(chain, min_pin);
            }
        }
        self.reclaimed.fetch_add(dropped, Ordering::Relaxed);
    }

    /// The latest version of `key` with epoch ≤ `epoch`, if any. Chains
    /// are short (reclamation keeps only pinned spans), so this is a
    /// reverse linear scan under the shard's read lock.
    pub fn read_at(&self, key: &K, epoch: u64) -> Option<V> {
        let shard = self.shards[self.shard_of(key)].read();
        let chain = shard.get(key)?;
        chain.iter().rev().find(|&&(e, _)| e <= epoch).map(|(_, v)| v.clone())
    }

    /// The highest fully published epoch.
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// Raise the watermark to at least `epoch` (replay only: recovery
    /// learns epochs from the log instead of allocating them).
    pub fn advance_watermark(&self, epoch: u64) {
        self.watermark.fetch_max(epoch, Ordering::AcqRel);
    }

    /// The epoch of `key`'s newest version (`None` for unknown keys).
    pub fn last_epoch(&self, key: &K) -> Option<u64> {
        let shard = self.shards[self.shard_of(key)].read();
        shard.get(key).and_then(|c| c.last()).map(|&(e, _)| e)
    }

    /// `key`'s full committed version chain, oldest first.
    pub fn chain(&self, key: &K) -> Vec<(u64, V)> {
        let shard = self.shards[self.shard_of(key)].read();
        shard.get(key).cloned().unwrap_or_default()
    }

    /// Every key's chain (unordered; callers sort as needed).
    pub fn chains(&self) -> Vec<(K, Vec<(u64, V)>)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.read();
            out.extend(shard.iter().map(|(k, c)| (k.clone(), c.clone())));
        }
        out
    }

    /// Total versions currently held across all chains. Conservation:
    /// always equals `created - reclaimed` (property-tested).
    pub fn total_versions(&self) -> u64 {
        self.shards.iter().map(|s| s.read().values().map(|c| c.len() as u64).sum::<u64>()).sum()
    }

    /// The store's monotonic counters plus the live-pin gauge.
    pub fn counters(&self) -> MvccCounters {
        MvccCounters {
            created: self.created.load(Ordering::Relaxed),
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
            pins_live: self.pins.lock().values().sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> MvccStore<u64, i64> {
        MvccStore::new(4)
    }

    /// Publish one single-key commit, returning its epoch.
    fn commit(s: &MvccStore<u64, i64>, key: u64, value: i64) -> u64 {
        let publish = s.begin_publish();
        let epoch = publish.epoch();
        s.append(&key, epoch, value);
        epoch
    }

    #[test]
    fn read_at_resolves_the_pinned_epoch() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 10);
        let pin = s.pin(); // pins genesis
        assert_eq!(commit(&s, 1, 20), 1);
        assert_eq!(commit(&s, 1, 30), 2);
        assert_eq!(s.read_at(&1, pin), Some(10), "snapshot sees its epoch, not the present");
        assert_eq!(s.read_at(&1, s.watermark()), Some(30));
        assert_eq!(s.read_at(&2, pin), None);
        s.unpin(pin);
    }

    #[test]
    fn unpinned_chains_collapse_to_length_one() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        for i in 1..=5 {
            commit(&s, 1, i);
        }
        // No pins: every superseded version reclaimed at append time.
        assert_eq!(s.chain(&1), vec![(5, 5)]);
        let c = s.counters();
        assert_eq!(c.created, 6);
        assert_eq!(c.reclaimed, 5);
        assert_eq!(s.total_versions(), 1);
    }

    #[test]
    fn pins_hold_versions_and_release_sweeps() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        commit(&s, 1, 1);
        let pin = s.pin(); // pin epoch 1
        commit(&s, 1, 2);
        commit(&s, 1, 3);
        // Version (1,1) is held by the pin; (2,2) superseded at 3 > pin so
        // it is held too (the pin rule is per-successor, and 3 > 1)… no:
        // successor epochs 2,3 vs min pin 1 — (1,1)'s successor is 2 > 1,
        // kept; (2,2)'s successor is 3 > 1, kept. Chain is full.
        assert_eq!(s.chain(&1), vec![(1, 1), (2, 2), (3, 3)]);
        assert_eq!(s.read_at(&1, pin), Some(1));
        assert_eq!(s.counters().pins_live, 1);
        s.unpin(pin);
        assert_eq!(s.chain(&1), vec![(3, 3)], "release sweeps the chain down");
        assert_eq!(s.counters().pins_live, 0);
        assert_eq!(s.total_versions(), 1);
    }

    #[test]
    fn pin_then_publish_is_ordered() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        let pin = s.pin();
        assert_eq!(pin, GENESIS_EPOCH);
        let publish = s.begin_publish();
        assert_eq!(publish.epoch(), 1);
        s.append(&1, publish.epoch(), 7);
        // Not yet published: the watermark (and any new pin) is still 0.
        assert_eq!(s.watermark(), GENESIS_EPOCH);
        drop(publish);
        assert_eq!(s.watermark(), 1);
        assert_eq!(s.pin(), 1);
        s.unpin(pin);
        s.unpin(1);
    }

    #[test]
    fn conservation_created_minus_reclaimed_is_live() {
        let s = store();
        for k in 0..8 {
            s.append(&k, GENESIS_EPOCH, 0);
        }
        let pin = s.pin();
        for i in 0..20 {
            commit(&s, i % 8, i as i64);
        }
        let c = s.counters();
        assert_eq!(c.created - c.reclaimed, s.total_versions());
        s.unpin(pin);
        let c = s.counters();
        assert_eq!(c.created - c.reclaimed, s.total_versions());
        assert_eq!(s.total_versions(), 8);
    }

    #[test]
    fn batch_publish_allocates_contiguous_run_and_advances_once() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        commit(&s, 1, 1); // watermark -> 1
        let batch = s.begin_publish_batch(3);
        assert_eq!(batch.first_epoch(), 2);
        assert_eq!(batch.epoch_of(0), 2);
        assert_eq!(batch.epoch_of(2), 4);
        assert_eq!(batch.last_epoch(), 4);
        for i in 0..3 {
            s.append(&(10 + i as u64), batch.epoch_of(i), i as i64);
        }
        // Nothing visible until the ticket drops: no partial batch. (A
        // concurrent pin would block on the publish lock the ticket
        // holds, then land at 4 — never inside the half-published run.)
        assert_eq!(s.watermark(), 1);
        drop(batch);
        assert_eq!(s.watermark(), 4, "whole run published at once");
        // Numbering continues contiguously after a batch.
        assert_eq!(commit(&s, 1, 9), 5);
    }

    #[test]
    #[should_panic(expected = "outside batch")]
    fn batch_epoch_out_of_range_panics() {
        let s = store();
        let batch = s.begin_publish_batch(2);
        batch.epoch_of(2);
    }

    #[test]
    fn shared_pin_epoch_refcounts() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        let a = s.pin();
        let b = s.pin();
        assert_eq!(a, b);
        assert_eq!(s.counters().pins_live, 2);
        commit(&s, 1, 1);
        s.unpin(a);
        assert_eq!(s.read_at(&1, b), Some(0), "second pin still holds the version");
        s.unpin(b);
        assert_eq!(s.chain(&1), vec![(1, 1)]);
    }
}
