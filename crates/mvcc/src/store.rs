//! The sharded version-chain store, the ordered key index, the publish
//! critical section, and epoch-based reclamation.

use parking_lot::{Mutex, MutexGuard, RwLock};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet};
use std::hash::{BuildHasher, Hash, RandomState};
use std::ops::RangeBounds;
use std::sync::atomic::{AtomicU64, Ordering};

/// The epoch of non-transactional base seeds (the paper's `init(x)`).
///
/// Seeds enter every chain at the genesis epoch, so they are visible to
/// *every* snapshot regardless of when the key was inserted — seeding is
/// not a transaction and takes no place in the commit order.
pub const GENESIS_EPOCH: u64 = 0;

/// A committed version chain: `(epoch, value)` pairs in strictly
/// ascending epoch order. The last entry is the current committed value.
type Chain<V> = Vec<(u64, V)>;

/// Staleness bound for the amortized pin-release sweep: while other pins
/// are live, at most this many unpins may pass before a sweep runs anyway
/// (see [`MvccStore::unpin`]). Quiescence — the pin table draining —
/// always sweeps immediately.
const SWEEP_EVERY: u64 = 64;

/// Slots in the fast-pin ring (a power of two). Two live pins whose
/// epochs collide modulo the ring size can't share a slot; the loser
/// falls back to the locked pin table, which is always correct.
const RING_SLOTS: usize = 64;

/// Low bits of a ring slot hold the pin count; high bits the epoch.
const COUNT_BITS: u32 = 16;
const COUNT_MASK: u64 = (1 << COUNT_BITS) - 1;

/// Epochs above this don't fit a packed slot (2^48 commits — unreachable
/// in practice); they always take the locked path.
const MAX_FAST_EPOCH: u64 = u64::MAX >> COUNT_BITS;

/// Bounded retries for the seqlock-validated fast pin and for the
/// min-pin settle loop before falling back to the always-correct path.
const FAST_PIN_TRIES: usize = 4;

/// One shard of the store: keys → version chains, plus the shard's slice
/// of the ordered key index, under a single lock.
///
/// The index is a `BTreeSet` over exactly the keys this shard holds a
/// chain for. Hash-sharding scatters adjacent keys across shards, so each
/// shard's index is an ordered *subsequence* of the global keyspace; a
/// range scan walks every shard's slice and k-way merges the runs back
/// into one key-ordered stream. Keys are never deleted (the engine has no
/// transactional delete), so the index is insert-only and a key's index
/// membership is exactly its chain's existence.
struct ShardState<K, V> {
    chains: HashMap<K, Chain<V>>,
    index: BTreeSet<K>,
    /// Keys whose chains currently hold more than one version — the only
    /// chains a pin-release sweep could reclaim from. Appends maintain
    /// the set (a chain enters when an append leaves it long, leaves when
    /// a prune collapses it), so [`MvccStore::unpin`]'s sweep visits the
    /// handful of pinned-down chains instead of walking the whole
    /// keyspace — which would make every snapshot drop and every
    /// optimistic commit O(total keys).
    dirty: HashSet<K>,
}

/// One shard: its chain state under a reader-writer lock, plus a gauge of
/// its dirty-chain count readable *without* the lock — the pin-release
/// sweep consults the gauge to skip clean shards entirely, so a sweep's
/// cost scales with the number of dirty shards, not the shard count.
struct Shard<K, V> {
    state: RwLock<ShardState<K, V>>,
    dirty: AtomicU64,
}

/// Monotonic counters the store maintains (see [`MvccStore::counters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MvccCounters {
    /// Versions ever appended to a chain (commits + seeds).
    pub created: u64,
    /// Versions reclaimed by epoch-based GC.
    pub reclaimed: u64,
    /// Snapshots currently pinning an epoch.
    pub pins_live: u64,
}

/// Why an epoch could not be pinned by [`MvccStore::pin_at`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinError {
    /// The epoch predates the oldest retained one: reclamation (or the
    /// per-chain version budget) has already dropped versions a consistent
    /// view at this epoch would need.
    Pruned {
        /// The epoch that was requested.
        requested: u64,
        /// The oldest epoch still consistently resolvable.
        oldest_retained: u64,
    },
    /// The epoch is above the publish watermark: no commit with that epoch
    /// has been published yet.
    Future {
        /// The epoch that was requested.
        requested: u64,
        /// The highest fully published epoch.
        watermark: u64,
    },
}

/// The multi-version object store.
///
/// Keys map to [version chains](Chain) sharded like the engine's lock
/// table, with a per-shard ordered index for range scans. Three pieces of
/// epoch state tie the chains to the commit order:
///
/// * `watermark` — the highest *fully published* epoch: every commit with
///   epoch ≤ watermark has all its versions appended. Snapshots pin the
///   watermark, so a pin never dangles over a half-published commit.
/// * the **publish lock** — serializes top-level publication (epoch
///   assignment → chain appends → watermark advance) *and* pin creation.
///   Without it, a commit at epoch `w+1` could garbage-collect the
///   version a snapshot racing to pin `w` is about to need; with it, a
///   pin either lands before the publisher reads the pin set (and is
///   respected) or after the watermark advanced (and pins `w+1`).
/// * `min_pin` — cached minimum live pin (`u64::MAX` when none), read on
///   the append path so reclamation needs no pin-table lock.
///
/// **Reclamation rule**: a version may be dropped iff it has a successor
/// and the successor's epoch is ≤ the minimum live pin. (A pin `P` reads
/// the latest version with epoch ≤ `P`; a version whose successor is
/// already ≤ every pin can win that race for no pin — pins only grow, as
/// they always pin the current watermark.) With no pins this prunes every
/// chain to length 1 — liveness — and it never drops a version some live
/// pin still resolves to — safety. Both are property-tested.
///
/// **Time travel** ([`MvccStore::pin_at`]) is bounded below by
/// `oldest_retained`: the low-water mark of epochs still consistently
/// resolvable. Every prune raises it to the sweep bound *before* any
/// version is dropped (conservatively, inside the pin-table lock), so a
/// racing `pin_at` either sees the raise and rejects, or lands its pin
/// first and is respected by the sweep's bound.
///
/// **Chain budget**: with `max_versions > 0`, an append that grows a chain
/// past the budget force-prunes the oldest versions regardless of live
/// pins — the escape hatch for a stuck (leaked or wedged) snapshot pin
/// that would otherwise make chains grow without bound. Force-pruning
/// raises `oldest_retained` past the dropped span, so *new* time-travel
/// pins can never land on an inconsistent epoch; a pre-existing pin below
/// the raise is **expired** — the budget deliberately sacrifices its
/// consistency instead of holding memory hostage: a force-pruned key has
/// no version at or below the expired epoch anymore and reads as absent.
/// Callers detect expiry by comparing the pin against `oldest_retained`.
pub struct MvccStore<K, V> {
    shards: Box<[Shard<K, V>]>,
    hasher: RandomState,
    /// Highest fully published epoch.
    watermark: AtomicU64,
    /// See the struct docs; held by [`MvccStore::begin_publish`] guards
    /// and briefly by [`MvccStore::pin`] / [`MvccStore::pin_at`].
    publish: Mutex<()>,
    /// Seqlock over the publish critical section: odd while a publish
    /// ticket or gate is live, even otherwise. A fast pin registers in
    /// the ring and then validates that the sequence is unchanged and
    /// even — proof that no publisher overlapped its registration, which
    /// substitutes for taking the publish lock (see [`MvccStore::pin`]).
    publish_seq: AtomicU64,
    /// Fast-pin ring: `RING_SLOTS` packed `(epoch << COUNT_BITS) | count`
    /// slots indexed by `epoch % RING_SLOTS`. A slot with count 0 is
    /// free (its epoch bits are stale). Ring pins and tree pins are
    /// fungible per epoch: the live pin count at epoch `e` is the ring
    /// count plus the tree count.
    ring: Box<[AtomicU64]>,
    /// Bumped once per completed ring registration (after the slot CAS
    /// and the `min_pin` lowering). [`MvccStore::settle_min`] uses it to
    /// detect registrations racing its recompute-and-store of `min_pin`.
    reg_seq: AtomicU64,
    /// Gauge of live pins across ring and tree (the `pins_live` counter
    /// and the quiescence trigger for sweeps in fast-pin mode).
    live_pins: AtomicU64,
    /// Whether [`MvccStore::pin`] may use the lock-free ring fast path.
    /// Off reproduces the pre-scaling locked pin table exactly (the
    /// benchmark's legacy arm).
    fast_pins: bool,
    /// Live pins: epoch → snapshot count.
    pins: Mutex<BTreeMap<u64, u64>>,
    /// Cached minimum of `pins` (`u64::MAX` when empty).
    min_pin: AtomicU64,
    /// Oldest epoch still consistently resolvable (see the struct docs).
    oldest_retained: AtomicU64,
    /// Per-chain version budget; 0 = unbounded.
    max_versions: usize,
    /// Unpins since the last non-quiescent sweep (see [`MvccStore::unpin`]).
    unswept: AtomicU64,
    /// Store-wide count of dirty chains (chains longer than one version),
    /// mirroring the per-shard `dirty` sets. Lets a sweep with nothing to
    /// do return on one atomic load instead of write-locking every shard.
    dirty_count: AtomicU64,
    created: AtomicU64,
    reclaimed: AtomicU64,
}

/// RAII half of the publish seqlock: constructing it flips `publish_seq`
/// odd (publisher active), dropping it flips it back even. Fast pins
/// validate against the sequence instead of taking the publish lock, so
/// every ticket that holds the lock must also hold one of these.
struct SeqCrit<'a> {
    seq: &'a AtomicU64,
}

impl<'a> SeqCrit<'a> {
    fn enter(seq: &'a AtomicU64) -> Self {
        seq.fetch_add(1, Ordering::SeqCst);
        SeqCrit { seq }
    }
}

impl Drop for SeqCrit<'_> {
    fn drop(&mut self) {
        self.seq.fetch_add(1, Ordering::SeqCst);
    }
}

/// An exclusive publication ticket for one top-level commit, returned by
/// [`MvccStore::begin_publish`]. Holds the publish lock; the commit
/// appends its versions at [`Publish::epoch`] and drops the ticket, which
/// advances the watermark — the instant the commit becomes visible to new
/// snapshots.
///
/// Field order is load-bearing: the `Drop` body stores the watermark,
/// then `_crit` drops (sequence goes even — fast pins may now trust the
/// new watermark), then `_guard` releases the lock.
pub struct Publish<'a> {
    watermark: &'a AtomicU64,
    _crit: SeqCrit<'a>,
    _guard: MutexGuard<'a, ()>,
    epoch: u64,
}

impl Publish<'_> {
    /// The commit epoch assigned to this publication.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl std::fmt::Debug for Publish<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Publish").field("epoch", &self.epoch).finish_non_exhaustive()
    }
}

impl Drop for Publish<'_> {
    fn drop(&mut self) {
        // Publication is serialized, so this is always watermark + 1.
        // SeqCst: the store must order before `_crit`'s sequence flip so
        // a fast pin that reads the even sequence also reads this
        // watermark (it pins the published epoch, never a stale one).
        self.watermark.store(self.epoch, Ordering::SeqCst);
    }
}

/// An exclusive publication ticket for a *batch* of top-level commits,
/// returned by [`MvccStore::begin_publish_batch`]. Holds the publish lock
/// once for the whole batch; participant `i` (0-based) appends its
/// versions at [`PublishBatch::epoch_of(i)`](PublishBatch::epoch_of).
/// Dropping the ticket advances the watermark past the entire epoch run —
/// the batch becomes visible to new snapshots as one unit, never as a
/// prefix.
pub struct PublishBatch<'a> {
    watermark: &'a AtomicU64,
    _crit: SeqCrit<'a>,
    _guard: MutexGuard<'a, ()>,
    base: u64,
    len: u64,
}

impl PublishBatch<'_> {
    /// The first epoch of the contiguous run.
    pub fn first_epoch(&self) -> u64 {
        self.base + 1
    }

    /// The epoch assigned to the `i`-th batch participant.
    ///
    /// # Panics
    /// If `i` is outside the batch.
    pub fn epoch_of(&self, i: usize) -> u64 {
        assert!((i as u64) < self.len, "participant {i} outside batch of {}", self.len);
        self.base + 1 + i as u64
    }

    /// The last epoch of the run (the watermark after publication).
    pub fn last_epoch(&self) -> u64 {
        self.base + self.len
    }
}

impl std::fmt::Debug for PublishBatch<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PublishBatch")
            .field("first_epoch", &self.first_epoch())
            .field("last_epoch", &self.last_epoch())
            .finish_non_exhaustive()
    }
}

impl Drop for PublishBatch<'_> {
    fn drop(&mut self) {
        // Serialized like single publication: base was the watermark when
        // the ticket was taken, so this is a contiguous advance. SeqCst
        // for the same reason as [`Publish`]'s drop.
        self.watermark.store(self.base + self.len, Ordering::SeqCst);
    }
}

/// The publish critical section held *without* an epoch allocated yet,
/// returned by [`MvccStore::begin_publish_gate`]. Optimistic commit
/// validation runs under the gate: the lock excludes concurrent
/// publications *and* new pins, so the chain heads it observes are final
/// for the duration. On validation success the gate converts into a
/// [`Publish`] (or [`PublishBatch`]) ticket, allocating epochs; on
/// failure it is simply dropped, releasing the lock **without advancing
/// the watermark** — an aborted validation leaves no epoch gap.
pub struct PublishGate<'a> {
    watermark: &'a AtomicU64,
    crit: SeqCrit<'a>,
    guard: MutexGuard<'a, ()>,
}

impl<'a> PublishGate<'a> {
    /// The epoch the next publication through this gate would receive.
    pub fn next_epoch(&self) -> u64 {
        self.watermark.load(Ordering::Acquire) + 1
    }

    /// Convert the gate into a single-commit publication ticket,
    /// allocating the next epoch. The lock is retained throughout.
    pub fn into_publish(self) -> Publish<'a> {
        let epoch = self.next_epoch();
        Publish { watermark: self.watermark, _crit: self.crit, _guard: self.guard, epoch }
    }

    /// Convert the gate into a batch publication ticket for `n` commits,
    /// allocating the contiguous epoch run `watermark+1 ..= watermark+n`.
    /// The lock is retained throughout.
    ///
    /// # Panics
    /// If `n == 0` — an empty batch has no epochs to allocate.
    pub fn into_batch(self, n: usize) -> PublishBatch<'a> {
        assert!(n > 0, "empty publish batch");
        let base = self.watermark.load(Ordering::Acquire);
        PublishBatch {
            watermark: self.watermark,
            _crit: self.crit,
            _guard: self.guard,
            base,
            len: n as u64,
        }
    }
}

impl std::fmt::Debug for PublishGate<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PublishGate")
            .field("next_epoch", &self.next_epoch())
            .finish_non_exhaustive()
    }
}

/// Drop every superseded version whose successor is ≤ `min_pin`.
/// Successor epochs ascend along the chain, so the droppable set is a
/// prefix. Returns how many versions were dropped.
fn prune<V>(chain: &mut Chain<V>, min_pin: u64) -> u64 {
    let mut cut = 0;
    while cut + 1 < chain.len() && chain[cut + 1].0 <= min_pin {
        cut += 1;
    }
    chain.drain(..cut);
    cut as u64
}

impl<K, V> MvccStore<K, V> {
    /// The highest fully published epoch.
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// The oldest epoch a time-travel pin ([`MvccStore::pin_at`]) can
    /// still land on: reclamation has conceded everything below it.
    pub fn oldest_retained(&self) -> u64 {
        self.oldest_retained.load(Ordering::Acquire)
    }

    /// Raise the watermark to at least `epoch` (replay only: recovery
    /// learns epochs from the log instead of allocating them).
    pub fn advance_watermark(&self, epoch: u64) {
        self.watermark.fetch_max(epoch, Ordering::AcqRel);
    }

    /// Concede that epochs below `epoch` are no longer consistently
    /// resolvable (replay only: a checkpoint compacts the history beneath
    /// its watermark, so post-recovery time travel must not reach under
    /// it — chains there start at their per-key checkpoint epochs, not at
    /// the versions that actually existed).
    pub fn concede_retained(&self, epoch: u64) {
        self.oldest_retained.fetch_max(epoch, Ordering::AcqRel);
    }

    /// The store's monotonic counters plus the live-pin gauge.
    pub fn counters(&self) -> MvccCounters {
        MvccCounters {
            created: self.created.load(Ordering::Relaxed),
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
            pins_live: self.live_pins.load(Ordering::SeqCst),
        }
    }

    /// Register one pin at `epoch` in the ring. Fails (caller takes the
    /// locked path) when the slot holds a different epoch with live pins,
    /// the slot's count would overflow, or the epoch doesn't pack.
    fn ring_register(&self, epoch: u64) -> bool {
        if epoch > MAX_FAST_EPOCH {
            return false;
        }
        let slot = &self.ring[(epoch as usize) % RING_SLOTS];
        let mut cur = slot.load(Ordering::SeqCst);
        loop {
            let (slot_epoch, count) = (cur >> COUNT_BITS, cur & COUNT_MASK);
            let next = if count == 0 {
                // Free slot (stale epoch bits): claim it.
                (epoch << COUNT_BITS) | 1
            } else if slot_epoch == epoch {
                if count == COUNT_MASK {
                    return false;
                }
                cur + 1
            } else {
                return false;
            };
            match slot.compare_exchange_weak(cur, next, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Release one ring pin at `epoch`. Returns false when the ring holds
    /// no pin at that epoch (the pin lives in the locked table instead).
    fn ring_unregister(&self, epoch: u64) -> bool {
        if epoch > MAX_FAST_EPOCH {
            return false;
        }
        let slot = &self.ring[(epoch as usize) % RING_SLOTS];
        let mut cur = slot.load(Ordering::SeqCst);
        loop {
            if cur >> COUNT_BITS != epoch || cur & COUNT_MASK == 0 {
                return false;
            }
            match slot.compare_exchange_weak(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Minimum epoch with a live ring pin (`u64::MAX` when none).
    fn ring_min(&self) -> u64 {
        let mut min = u64::MAX;
        for slot in self.ring.iter() {
            let v = slot.load(Ordering::SeqCst);
            if v & COUNT_MASK != 0 {
                min = min.min(v >> COUNT_BITS);
            }
        }
        min
    }

    /// Recompute `min_pin` from the ring and the locked table and *store*
    /// it — the only place `min_pin` ever rises. Must be called with the
    /// publish lock held: that excludes publishers, so every ring pin
    /// below the current watermark is visible to the scan (a pin below
    /// the watermark can only exist because some publisher ran after its
    /// validated registration, and we are ordered after that publisher by
    /// the lock). Ring pins still mid-registration can be missed, but
    /// they pin the current watermark, and no prune at any bound drops a
    /// chain's newest version — which has epoch ≤ watermark — so they
    /// are safe regardless.
    ///
    /// The store may race a concurrent registration's `fetch_min` and
    /// clobber it; `reg_seq` detects that, and the loop re-scans. If
    /// registrations keep landing, the bounded loop gives up and lowers
    /// conservatively (`fetch_min` never raises, so it can't clobber).
    fn settle_min(&self, tree_min: u64) -> u64 {
        for _ in 0..FAST_PIN_TRIES {
            let seq = self.reg_seq.load(Ordering::SeqCst);
            let min = self.ring_min().min(tree_min);
            self.min_pin.store(min, Ordering::SeqCst);
            if self.reg_seq.load(Ordering::SeqCst) == seq {
                return min;
            }
        }
        let min = self.ring_min().min(tree_min);
        self.min_pin.fetch_min(min, Ordering::SeqCst);
        min
    }
}

impl<K, V> std::fmt::Debug for MvccStore<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MvccStore")
            .field("shards", &self.shards.len())
            .field("watermark", &self.watermark())
            .field("oldest_retained", &self.oldest_retained())
            .field("max_versions", &self.max_versions)
            .field("counters", &self.counters())
            .finish_non_exhaustive()
    }
}

impl<K, V> MvccStore<K, V>
where
    K: Eq + Hash + Ord + Clone,
    V: Clone,
{
    /// An empty store with `shards` chain shards (at least 1) and no
    /// per-chain version budget.
    pub fn new(shards: usize) -> Self {
        Self::with_budget(shards, 0)
    }

    /// An empty store with a per-chain version budget (`0` = unbounded):
    /// an append that grows a chain past `max_versions` force-prunes the
    /// oldest versions even if a live pin holds them, raising the
    /// oldest-retained bound past the dropped span.
    pub fn with_budget(shards: usize, max_versions: usize) -> Self {
        Self::with_opts(shards, max_versions, true)
    }

    /// An empty store with full control over the scaling knobs:
    /// `fast_pins = false` reproduces the pre-scaling locked pin table
    /// exactly (the hot-path benchmark's legacy arm).
    pub fn with_opts(shards: usize, max_versions: usize, fast_pins: bool) -> Self {
        MvccStore {
            shards: (0..shards.max(1))
                .map(|_| Shard {
                    state: RwLock::new(ShardState {
                        chains: HashMap::new(),
                        index: BTreeSet::new(),
                        dirty: HashSet::new(),
                    }),
                    dirty: AtomicU64::new(0),
                })
                .collect(),
            hasher: RandomState::new(),
            watermark: AtomicU64::new(GENESIS_EPOCH),
            publish: Mutex::new(()),
            publish_seq: AtomicU64::new(0),
            ring: (0..RING_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            reg_seq: AtomicU64::new(0),
            live_pins: AtomicU64::new(0),
            fast_pins,
            pins: Mutex::new(BTreeMap::new()),
            min_pin: AtomicU64::new(u64::MAX),
            oldest_retained: AtomicU64::new(GENESIS_EPOCH),
            max_versions,
            unswept: AtomicU64::new(0),
            dirty_count: AtomicU64::new(0),
            created: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &K) -> usize {
        (self.hasher.hash_one(key) as usize) % self.shards.len()
    }

    /// Enter the publish critical section for one top-level commit,
    /// assigning it the next epoch. Append the commit's versions with
    /// [`MvccStore::append`] at [`Publish::epoch`], then drop the ticket
    /// to advance the watermark.
    pub fn begin_publish(&self) -> Publish<'_> {
        let guard = self.publish.lock();
        let crit = SeqCrit::enter(&self.publish_seq);
        let epoch = self.watermark.load(Ordering::Acquire) + 1;
        Publish { watermark: &self.watermark, _crit: crit, _guard: guard, epoch }
    }

    /// Enter the publish critical section once for a batch of `n`
    /// top-level commits, allocating the contiguous epoch run
    /// `watermark+1 ..= watermark+n`. This is the group-commit
    /// amortization: one lock acquisition and one watermark advance for
    /// the whole batch, instead of `n` serialized publish cycles.
    ///
    /// # Panics
    /// If `n == 0` — an empty batch has no epochs to allocate.
    pub fn begin_publish_batch(&self, n: usize) -> PublishBatch<'_> {
        assert!(n > 0, "empty publish batch");
        let guard = self.publish.lock();
        let crit = SeqCrit::enter(&self.publish_seq);
        let base = self.watermark.load(Ordering::Acquire);
        PublishBatch { watermark: &self.watermark, _crit: crit, _guard: guard, base, len: n as u64 }
    }

    /// Enter the publish critical section *without* allocating an epoch.
    /// Optimistic commits validate their footprints against chain heads
    /// under the gate, then convert it ([`PublishGate::into_publish`] /
    /// [`PublishGate::into_batch`]) only if validation succeeds; dropping
    /// an unconverted gate releases the lock with the watermark untouched.
    pub fn begin_publish_gate(&self) -> PublishGate<'_> {
        let guard = self.publish.lock();
        let crit = SeqCrit::enter(&self.publish_seq);
        PublishGate { watermark: &self.watermark, crit, guard }
    }

    /// Append a version to `key`'s chain, entering the key into the
    /// ordered index on first contact. `epoch` must be strictly above the
    /// chain's last (per-key publications are serialized by the lock
    /// manager, so callers get this for free). Reclaims any versions the
    /// append just made droppable, and enforces the per-chain version
    /// budget if one is set.
    pub fn append(&self, key: &K, epoch: u64, value: V) {
        let shard = &self.shards[self.shard_of(key)];
        let mut guard = shard.state.write();
        let state = &mut *guard;
        // First contact clones the key into the chain map and the index;
        // every later append to the key is clone-free.
        if !state.chains.contains_key(key) {
            state.index.insert(key.clone());
            state.chains.insert(key.clone(), Chain::new());
        }
        let chain = state.chains.get_mut(key).expect("chain just ensured");
        debug_assert!(chain.last().is_none_or(|&(e, _)| e < epoch), "chain epochs must ascend");
        chain.push((epoch, value));
        self.created.fetch_add(1, Ordering::Relaxed);
        let mut dropped = prune(chain, self.min_pin.load(Ordering::Acquire));
        if dropped > 0 {
            // Epochs below the new head just lost resolution on this
            // chain: concede them so no later `pin_at` lands there. The
            // new head is ≤ every live pin (the prune rule keeps the
            // latest version at or below the minimum pin), so no live pin
            // is invalidated; and publish-path appends hold the publish
            // lock, serializing this raise against `pin_at`'s check.
            self.oldest_retained.fetch_max(chain[0].0, Ordering::AcqRel);
        }
        if self.max_versions > 0 && chain.len() > self.max_versions {
            // Budget overflow: a stuck pin is holding this chain hostage.
            // Force-prune the oldest versions and concede every epoch
            // below the new head — raised *before* the shard lock drops,
            // so `pin_at` (serialized against this publisher by the
            // publish lock) can never validate into the dropped span.
            let cut = chain.len() - self.max_versions;
            self.oldest_retained.fetch_max(chain[cut].0, Ordering::AcqRel);
            chain.drain(..cut);
            dropped += cut as u64;
        }
        // Dirty-set upkeep: a live pin just kept superseded versions
        // alive on this chain — remember it so the pin-release sweep can
        // find it without walking every chain in the store. Both gauges
        // (per-shard and store-wide) move under the shard's write lock.
        if chain.len() > 1 {
            if !state.dirty.contains(key) {
                state.dirty.insert(key.clone());
                shard.dirty.fetch_add(1, Ordering::Release);
                self.dirty_count.fetch_add(1, Ordering::Relaxed);
            }
        } else if state.dirty.remove(key) {
            shard.dirty.fetch_sub(1, Ordering::Release);
            self.dirty_count.fetch_sub(1, Ordering::Relaxed);
        }
        self.reclaimed.fetch_add(dropped, Ordering::Relaxed);
    }

    /// Pin the current watermark for a snapshot. Balance with
    /// [`MvccStore::unpin`].
    ///
    /// **Fast path** (when enabled): instead of taking the publish lock,
    /// register in the ring and *validate* that no publisher overlapped,
    /// via the publish seqlock. The registration order is load-bearing:
    ///
    /// 1. read `publish_seq` — bail to the locked path if odd;
    /// 2. read the watermark `w`;
    /// 3. CAS the ring slot (the pin becomes visible to min scans);
    /// 4. lower `min_pin` to ≤ `w`;
    /// 5. bump `reg_seq` (min scans racing us re-check);
    /// 6. re-read `publish_seq` — if unchanged, no publisher's critical
    ///    section overlapped steps 1–5, so every later publisher reads
    ///    `min_pin` ≤ `w` *after* our step 4 and respects the pin; if it
    ///    changed, undo the slot and retry (a publisher may have missed
    ///    us and pruned as if we weren't there).
    ///
    /// This is the pre-scaling guarantee — "a pin either lands before
    /// the publisher reads the pin set or after the watermark advance" —
    /// enforced by optimistic validation instead of the lock.
    pub fn pin(&self) -> u64 {
        if self.fast_pins {
            for _ in 0..FAST_PIN_TRIES {
                let seq = self.publish_seq.load(Ordering::SeqCst);
                if seq & 1 == 1 {
                    break; // publisher active — queue on its lock instead
                }
                let epoch = self.watermark.load(Ordering::SeqCst);
                if !self.ring_register(epoch) {
                    break; // slot collision or overflow — locked path
                }
                self.min_pin.fetch_min(epoch, Ordering::SeqCst);
                self.reg_seq.fetch_add(1, Ordering::SeqCst);
                if self.publish_seq.load(Ordering::SeqCst) == seq {
                    self.live_pins.fetch_add(1, Ordering::SeqCst);
                    return epoch;
                }
                // A publisher overlapped the registration: the watermark
                // we pinned may already be stale. Undo and retry. (Ring
                // counts at one epoch are fungible, so decrementing a
                // slot another thread also bumped nets out correctly;
                // `min_pin` stays conservatively low until a settle.)
                self.ring_unregister(epoch);
            }
        }
        self.pin_slow()
    }

    /// The locked pin path: serialized against publishers by the publish
    /// lock (see the struct docs for why). In legacy mode this *is*
    /// [`MvccStore::pin`], byte for byte the pre-scaling behavior.
    fn pin_slow(&self) -> u64 {
        let _publish = self.publish.lock();
        let epoch = self.watermark.load(Ordering::Acquire);
        let mut pins = self.pins.lock();
        *pins.entry(epoch).or_insert(0) += 1;
        if self.fast_pins {
            // Ring pins may sit below the tree minimum, so never
            // recompute-and-store here — only lower. Raising `min_pin`
            // is exclusively `sweep_locked`'s job.
            self.min_pin.fetch_min(epoch, Ordering::SeqCst);
        } else {
            let min = *pins.keys().next().expect("just inserted");
            self.min_pin.store(min, Ordering::Release);
        }
        self.live_pins.fetch_add(1, Ordering::SeqCst);
        epoch
    }

    /// Pin a *specific* epoch for a time-travel snapshot. Fails with
    /// [`PinError::Future`] above the watermark and [`PinError::Pruned`]
    /// below the oldest retained epoch. Serialized against publishers by
    /// the publish lock; ordered against concurrent sweeps by the
    /// pin-table lock (sweeps concede their bound to `oldest_retained`
    /// inside it, before dropping anything — so this check is race-free).
    pub fn pin_at(&self, epoch: u64) -> Result<u64, PinError> {
        let _publish = self.publish.lock();
        let watermark = self.watermark.load(Ordering::Acquire);
        if epoch > watermark {
            return Err(PinError::Future { requested: epoch, watermark });
        }
        let mut pins = self.pins.lock();
        let oldest_retained = self.oldest_retained.load(Ordering::Acquire);
        if epoch < oldest_retained {
            return Err(PinError::Pruned { requested: epoch, oldest_retained });
        }
        *pins.entry(epoch).or_insert(0) += 1;
        if self.fast_pins {
            // Only lower: ring pins may sit below the tree minimum.
            self.min_pin.fetch_min(epoch, Ordering::SeqCst);
        } else {
            let min = *pins.keys().next().expect("just inserted");
            self.min_pin.store(min, Ordering::Release);
        }
        self.live_pins.fetch_add(1, Ordering::SeqCst);
        Ok(epoch)
    }

    /// Add one more pin to an epoch that is already pinned (snapshot
    /// cloning). The epoch's versions are protected by the existing pin,
    /// so no publisher/sweep coordination is needed.
    ///
    /// # Panics
    /// If `epoch` has no live pin (debug builds).
    pub fn repin(&self, epoch: u64) {
        if self.fast_pins {
            // The epoch is already protected by the caller's existing
            // pin (ring or tree), so no publisher validation is needed —
            // just land the count wherever there is room.
            if self.ring_register(epoch) {
                self.min_pin.fetch_min(epoch, Ordering::SeqCst);
                self.reg_seq.fetch_add(1, Ordering::SeqCst);
            } else {
                // The base pin may live in the ring, so a missing tree
                // entry is legitimate here (unlike legacy mode).
                *self.pins.lock().entry(epoch).or_insert(0) += 1;
                self.min_pin.fetch_min(epoch, Ordering::SeqCst);
            }
            self.live_pins.fetch_add(1, Ordering::SeqCst);
            return;
        }
        let mut pins = self.pins.lock();
        match pins.get_mut(&epoch) {
            Some(n) => *n += 1,
            None => {
                debug_assert!(false, "repin of an epoch never pinned");
                pins.insert(epoch, 1);
                let min = *pins.keys().next().expect("just inserted");
                self.min_pin.store(min, Ordering::Release);
            }
        }
        self.live_pins.fetch_add(1, Ordering::SeqCst);
    }

    /// Release a pin taken by [`MvccStore::pin`] / [`MvccStore::pin_at`].
    /// If the minimum live pin rose, sweep every chain — the liveness half
    /// of reclamation: once all snapshots drop, chains shrink back to
    /// length 1.
    ///
    /// **Fast-pin mode**: a ring-resident pin releases with one CAS; the
    /// `min_pin` raise, `oldest_retained` concession and sweep happen at
    /// sweep points only — quiescence (the gauge draining) or the
    /// [`SWEEP_EVERY`] staleness bound — inside [`MvccStore::sweep_locked`],
    /// which takes the publish lock so the recompute can never race a
    /// publisher. Deferring the floor raise is safe: the floor only ever
    /// lags, admitting `pin_at`s the per-unpin raise would have rejected
    /// a little earlier, and those epochs are still resolvable (nothing
    /// was swept). Ring and tree counts at one epoch are fungible, so
    /// releasing "a" pin at the epoch — whichever copy is found first —
    /// keeps the totals exact.
    pub fn unpin(&self, epoch: u64) {
        if !self.fast_pins {
            return self.unpin_legacy(epoch);
        }
        if !self.ring_unregister(epoch) {
            // Tree-resident pin (collision/overflow/`pin_at`).
            let mut pins = self.pins.lock();
            match pins.get_mut(&epoch) {
                Some(n) if *n > 1 => *n -= 1,
                Some(_) => {
                    pins.remove(&epoch);
                }
                None => {
                    debug_assert!(false, "unpin of an epoch never pinned");
                    return;
                }
            }
        }
        let left = self.live_pins.fetch_sub(1, Ordering::SeqCst) - 1;
        let backlog = self.unswept.fetch_add(1, Ordering::Relaxed) + 1;
        if left == 0 || backlog >= SWEEP_EVERY {
            self.sweep_locked();
        }
    }

    /// Raise `min_pin` and the `oldest_retained` floor to the settled
    /// minimum live pin, then sweep. The publish lock excludes
    /// publishers and `pin_at` for the duration, so the bound cannot go
    /// stale mid-sweep; fast pins may still land concurrently, but they
    /// pin the current watermark, and no prune drops a chain's newest
    /// version (epoch ≤ watermark), so they are safe under any bound
    /// this computes.
    fn sweep_locked(&self) {
        let _publish = self.publish.lock();
        let pins = self.pins.lock();
        let tree_min = pins.keys().next().copied().unwrap_or(u64::MAX);
        let min = self.settle_min(tree_min);
        let cap = self.watermark.load(Ordering::SeqCst);
        self.oldest_retained.fetch_max(min.min(cap), Ordering::AcqRel);
        self.unswept.store(0, Ordering::Relaxed);
        self.sweep(min);
        drop(pins);
    }

    /// The pre-scaling unpin, byte for byte (plus the live-pin gauge):
    /// every release recomputes the minimum, concedes the floor, and
    /// sweeps at quiescence or staleness — all inside the pin-table lock.
    fn unpin_legacy(&self, epoch: u64) {
        let mut pins = self.pins.lock();
        match pins.get_mut(&epoch) {
            Some(n) if *n > 1 => {
                *n -= 1;
                self.live_pins.fetch_sub(1, Ordering::SeqCst);
            }
            Some(_) => {
                pins.remove(&epoch);
                self.live_pins.fetch_sub(1, Ordering::SeqCst);
            }
            None => debug_assert!(false, "unpin of an epoch never pinned"),
        }
        let min = pins.keys().next().copied().unwrap_or(u64::MAX);
        self.min_pin.store(min, Ordering::Release);
        // Concede everything below the sweep bound *before* pruning,
        // still inside the pin-table lock: a concurrent `pin_at` either
        // locks the table after us (sees the raise, rejects an epoch the
        // sweep may drop) or locked it before us (its pin is in `pins`,
        // so `min` respects it). Capped at the watermark so a pin-free
        // store still allows pinning the present.
        let cap = self.watermark.load(Ordering::Acquire);
        self.oldest_retained.fetch_max(min.min(cap), Ordering::AcqRel);
        // The sweep itself must also run inside the pin-table lock. If it
        // ran after releasing it with the captured `min`, a fresh pin
        // could land (its epoch ≥ the raised floor, so `pin_at` admits
        // it) and a publisher could append — pruning that chain down to
        // the new pin, correctly — before our stale, laxer `min` swept
        // the very version the new pin resolves to. Holding the lock
        // makes pin-accounting and its sweep one atomic step; new pins
        // wait, and everything they need survives a prune at `min`
        // (prune keeps the newest version ≤ `min` and all later ones).
        //
        // Sweeping is amortized: while other pins are live, most unpins
        // skip it (appends already prune their own chains eagerly, so
        // only written-then-idle chains wait on a sweep). Skipping is
        // always safe — it only delays reclamation, never drops more —
        // and two events force a real sweep: the pin table draining
        // (quiescence: chains must collapse the moment the last snapshot
        // lets go) and a staleness bound of [`SWEEP_EVERY`] unpins, so a
        // busy store still reclaims promptly. Without this, every
        // snapshot drop and every optimistic commit serializes behind a
        // store-wide shard-lock walk under the pin-table lock.
        let backlog = self.unswept.fetch_add(1, Ordering::Relaxed) + 1;
        if pins.is_empty() || backlog >= SWEEP_EVERY {
            self.unswept.store(0, Ordering::Relaxed);
            self.sweep(min);
        }
        drop(pins);
    }

    /// Drop every version reclaimable under `min_pin`, store-wide.
    ///
    /// Only chains in a shard's dirty set can hold a reclaimable version
    /// (append prunes eagerly, so a chain is long only when some pin held
    /// its old versions back), so the sweep visits exactly those — O(live
    /// multi-version chains), not O(keyspace). Chains still long after
    /// the prune (an older pin persists) stay in the set.
    fn sweep(&self, min_pin: u64) {
        if self.dirty_count.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut dropped = 0;
        for shard in self.shards.iter() {
            // The gauge is read without the lock: a clean shard costs one
            // load. (A racing append can dirty it right after — that key
            // waits for the next sweep, like any key written mid-sweep.)
            if shard.dirty.load(Ordering::Acquire) == 0 {
                continue;
            }
            let mut guard = shard.state.write();
            let state = &mut *guard;
            let before = state.dirty.len() as u64;
            let chains = &mut state.chains;
            state.dirty.retain(|key| {
                let Some(chain) = chains.get_mut(key) else { return false };
                dropped += prune(chain, min_pin);
                chain.len() > 1
            });
            let cleaned = before - state.dirty.len() as u64;
            if cleaned > 0 {
                shard.dirty.fetch_sub(cleaned, Ordering::Release);
                self.dirty_count.fetch_sub(cleaned, Ordering::Release);
            }
        }
        self.reclaimed.fetch_add(dropped, Ordering::Relaxed);
    }

    /// The latest version of `key` with epoch ≤ `epoch`, if any. Chains
    /// are short (reclamation keeps only pinned spans), so this is a
    /// reverse linear scan under the shard's read lock.
    pub fn read_at(&self, key: &K, epoch: u64) -> Option<V> {
        let shard = self.shards[self.shard_of(key)].state.read();
        let chain = shard.chains.get(key)?;
        chain.iter().rev().find(|&&(e, _)| e <= epoch).map(|(_, v)| v.clone())
    }

    /// A consistent key-ordered walk over every chain in `bounds`,
    /// resolved at `epoch`: for each indexed key in range, the latest
    /// version with epoch ≤ `epoch` (keys with no such version — born
    /// after the pinned epoch by checkpoint replay — are skipped).
    ///
    /// Shards are visited one at a time under their read locks and the
    /// sorted per-shard runs are k-way merged, so the scan never holds
    /// more than one shard lock and never blocks publication. Consistency
    /// comes from the epoch filter, not the locking: versions at or below
    /// a pinned epoch are immutable and GC-protected, and any commit
    /// racing the walk publishes at an epoch above it — invisible by
    /// construction. (Non-transactional genesis seeds are the one
    /// exception, exactly as for [`MvccStore::read_at`]: a seed landing
    /// mid-scan may appear in later shards only.)
    pub fn range_at<R>(&self, bounds: R, epoch: u64) -> Vec<(K, V)>
    where
        R: RangeBounds<K>,
    {
        let mut runs: Vec<std::iter::Peekable<std::vec::IntoIter<(K, V)>>> =
            Vec::with_capacity(self.shards.len());
        for shard in self.shards.iter() {
            let state = shard.state.read();
            let mut run = Vec::new();
            for key in state.index.range((bounds.start_bound(), bounds.end_bound())) {
                let Some(chain) = state.chains.get(key) else { continue };
                if let Some((_, v)) = chain.iter().rev().find(|&&(e, _)| e <= epoch) {
                    run.push((key.clone(), v.clone()));
                }
            }
            runs.push(run.into_iter().peekable());
        }
        merge_runs(runs)
    }

    /// Every indexed key in `bounds`, ascending. (The key set is
    /// insert-only, so this is stable under concurrent commits; only a
    /// concurrent non-transactional seed can extend it.)
    pub fn keys_in<R>(&self, bounds: R) -> Vec<K>
    where
        R: RangeBounds<K>,
    {
        let mut runs: Vec<std::iter::Peekable<std::vec::IntoIter<(K, ())>>> =
            Vec::with_capacity(self.shards.len());
        for shard in self.shards.iter() {
            let state = shard.state.read();
            let run: Vec<(K, ())> = state
                .index
                .range((bounds.start_bound(), bounds.end_bound()))
                .map(|k| (k.clone(), ()))
                .collect();
            runs.push(run.into_iter().peekable());
        }
        merge_runs(runs).into_iter().map(|(k, ())| k).collect()
    }

    /// The epoch of `key`'s newest version (`None` for unknown keys).
    pub fn last_epoch(&self, key: &K) -> Option<u64> {
        let shard = self.shards[self.shard_of(key)].state.read();
        shard.chains.get(key).and_then(|c| c.last()).map(|&(e, _)| e)
    }

    /// `key`'s full committed version chain, oldest first.
    pub fn chain(&self, key: &K) -> Vec<(u64, V)> {
        let shard = self.shards[self.shard_of(key)].state.read();
        shard.chains.get(key).cloned().unwrap_or_default()
    }

    /// Every key's chain (unordered; callers sort as needed).
    pub fn chains(&self) -> Vec<(K, Vec<(u64, V)>)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.state.read();
            out.extend(shard.chains.iter().map(|(k, c)| (k.clone(), c.clone())));
        }
        out
    }

    /// Total versions currently held across all chains. Conservation:
    /// always equals `created - reclaimed` (property-tested).
    pub fn total_versions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.state.read().chains.values().map(|c| c.len() as u64).sum::<u64>())
            .sum()
    }
}

/// K-way merge of key-sorted runs with pairwise-disjoint key sets (each
/// key lives in exactly one shard) into one key-ordered vector.
fn merge_runs<K: Ord + Clone, V>(
    mut runs: Vec<std::iter::Peekable<std::vec::IntoIter<(K, V)>>>,
) -> Vec<(K, V)> {
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::with_capacity(runs.len());
    for (i, run) in runs.iter_mut().enumerate() {
        if let Some((k, _)) = run.peek() {
            heap.push(Reverse((k.clone(), i)));
        }
    }
    let mut out = Vec::new();
    while let Some(Reverse((_, i))) = heap.pop() {
        let (k, v) = runs[i].next().expect("heap entry implies a head");
        out.push((k, v));
        if let Some((next, _)) = runs[i].peek() {
            heap.push(Reverse((next.clone(), i)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> MvccStore<u64, i64> {
        MvccStore::new(4)
    }

    /// Publish one single-key commit, returning its epoch.
    fn commit(s: &MvccStore<u64, i64>, key: u64, value: i64) -> u64 {
        let publish = s.begin_publish();
        let epoch = publish.epoch();
        s.append(&key, epoch, value);
        epoch
    }

    #[test]
    fn read_at_resolves_the_pinned_epoch() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 10);
        let pin = s.pin(); // pins genesis
        assert_eq!(commit(&s, 1, 20), 1);
        assert_eq!(commit(&s, 1, 30), 2);
        assert_eq!(s.read_at(&1, pin), Some(10), "snapshot sees its epoch, not the present");
        assert_eq!(s.read_at(&1, s.watermark()), Some(30));
        assert_eq!(s.read_at(&2, pin), None);
        s.unpin(pin);
    }

    #[test]
    fn dropped_gate_leaves_the_watermark_untouched() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        commit(&s, 1, 1);
        {
            let gate = s.begin_publish_gate();
            assert_eq!(gate.next_epoch(), 2);
            // Validation failed: drop without converting.
        }
        assert_eq!(s.watermark(), 1, "no epoch allocated by an abandoned gate");
        // The lock was released: the next publication proceeds and gets
        // the epoch the gate previewed.
        assert_eq!(commit(&s, 1, 2), 2);
    }

    #[test]
    fn gate_converts_into_single_publication() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        let gate = s.begin_publish_gate();
        let publish = gate.into_publish();
        assert_eq!(publish.epoch(), 1);
        s.append(&1, publish.epoch(), 10);
        drop(publish);
        assert_eq!(s.watermark(), 1);
        assert_eq!(s.read_at(&1, 1), Some(10));
    }

    #[test]
    fn gate_converts_into_batch_publication() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        commit(&s, 1, 1); // watermark -> 1
        let gate = s.begin_publish_gate();
        let batch = gate.into_batch(2);
        assert_eq!((batch.first_epoch(), batch.last_epoch()), (2, 3));
        s.append(&1, batch.epoch_of(0), 20);
        s.append(&1, batch.epoch_of(1), 30);
        drop(batch);
        assert_eq!(s.watermark(), 3, "whole run published at once");
    }

    #[test]
    fn unpinned_chains_collapse_to_length_one() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        for i in 1..=5 {
            commit(&s, 1, i);
        }
        // No pins: every superseded version reclaimed at append time.
        assert_eq!(s.chain(&1), vec![(5, 5)]);
        let c = s.counters();
        assert_eq!(c.created, 6);
        assert_eq!(c.reclaimed, 5);
        assert_eq!(s.total_versions(), 1);
    }

    #[test]
    fn pins_hold_versions_and_release_sweeps() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        commit(&s, 1, 1);
        let pin = s.pin(); // pin epoch 1
        commit(&s, 1, 2);
        commit(&s, 1, 3);
        // Version (1,1) is held by the pin; (2,2) superseded at 3 > pin so
        // it is held too (the pin rule is per-successor, and 3 > 1)… no:
        // successor epochs 2,3 vs min pin 1 — (1,1)'s successor is 2 > 1,
        // kept; (2,2)'s successor is 3 > 1, kept. Chain is full.
        assert_eq!(s.chain(&1), vec![(1, 1), (2, 2), (3, 3)]);
        assert_eq!(s.read_at(&1, pin), Some(1));
        assert_eq!(s.counters().pins_live, 1);
        s.unpin(pin);
        assert_eq!(s.chain(&1), vec![(3, 3)], "release sweeps the chain down");
        assert_eq!(s.counters().pins_live, 0);
        assert_eq!(s.total_versions(), 1);
    }

    #[test]
    fn pin_then_publish_is_ordered() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        let pin = s.pin();
        assert_eq!(pin, GENESIS_EPOCH);
        let publish = s.begin_publish();
        assert_eq!(publish.epoch(), 1);
        s.append(&1, publish.epoch(), 7);
        // Not yet published: the watermark (and any new pin) is still 0.
        assert_eq!(s.watermark(), GENESIS_EPOCH);
        drop(publish);
        assert_eq!(s.watermark(), 1);
        assert_eq!(s.pin(), 1);
        s.unpin(pin);
        s.unpin(1);
    }

    #[test]
    fn conservation_created_minus_reclaimed_is_live() {
        let s = store();
        for k in 0..8 {
            s.append(&k, GENESIS_EPOCH, 0);
        }
        let pin = s.pin();
        for i in 0..20 {
            commit(&s, i % 8, i as i64);
        }
        let c = s.counters();
        assert_eq!(c.created - c.reclaimed, s.total_versions());
        s.unpin(pin);
        let c = s.counters();
        assert_eq!(c.created - c.reclaimed, s.total_versions());
        assert_eq!(s.total_versions(), 8);
    }

    #[test]
    fn batch_publish_allocates_contiguous_run_and_advances_once() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        commit(&s, 1, 1); // watermark -> 1
        let batch = s.begin_publish_batch(3);
        assert_eq!(batch.first_epoch(), 2);
        assert_eq!(batch.epoch_of(0), 2);
        assert_eq!(batch.epoch_of(2), 4);
        assert_eq!(batch.last_epoch(), 4);
        for i in 0..3 {
            s.append(&(10 + i as u64), batch.epoch_of(i), i as i64);
        }
        // Nothing visible until the ticket drops: no partial batch. (A
        // concurrent pin would block on the publish lock the ticket
        // holds, then land at 4 — never inside the half-published run.)
        assert_eq!(s.watermark(), 1);
        drop(batch);
        assert_eq!(s.watermark(), 4, "whole run published at once");
        // Numbering continues contiguously after a batch.
        assert_eq!(commit(&s, 1, 9), 5);
    }

    #[test]
    #[should_panic(expected = "outside batch")]
    fn batch_epoch_out_of_range_panics() {
        let s = store();
        let batch = s.begin_publish_batch(2);
        batch.epoch_of(2);
    }

    #[test]
    fn shared_pin_epoch_refcounts() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        let a = s.pin();
        let b = s.pin();
        assert_eq!(a, b);
        assert_eq!(s.counters().pins_live, 2);
        commit(&s, 1, 1);
        s.unpin(a);
        assert_eq!(s.read_at(&1, b), Some(0), "second pin still holds the version");
        s.unpin(b);
        assert_eq!(s.chain(&1), vec![(1, 1)]);
    }

    #[test]
    fn range_at_walks_keys_in_order() {
        let s = store();
        for k in [5u64, 1, 9, 3, 7] {
            s.append(&k, GENESIS_EPOCH, k as i64 * 10);
        }
        let pin = s.pin();
        assert_eq!(
            s.range_at(.., pin),
            vec![(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)],
            "full scan in key order"
        );
        assert_eq!(s.range_at(3..8, pin), vec![(3, 30), (5, 50), (7, 70)]);
        assert_eq!(s.range_at(3..=7, pin), vec![(3, 30), (5, 50), (7, 70)]);
        assert_eq!(s.range_at(10.., pin), vec![]);
        assert_eq!(s.keys_in(..), vec![1, 3, 5, 7, 9]);
        s.unpin(pin);
    }

    #[test]
    fn range_at_resolves_the_pinned_epoch() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 10);
        s.append(&2, GENESIS_EPOCH, 20);
        let pin = s.pin();
        commit(&s, 1, 11);
        commit(&s, 2, 22);
        assert_eq!(s.range_at(.., pin), vec![(1, 10), (2, 20)], "scan frozen at the pin");
        assert_eq!(s.range_at(.., s.watermark()), vec![(1, 11), (2, 22)]);
        // A key whose chain starts above the scanned epoch is skipped.
        s.append(&3, 5, 30); // checkpoint-style late-born key
        assert_eq!(s.range_at(.., pin), vec![(1, 10), (2, 20)]);
        s.unpin(pin);
    }

    #[test]
    fn pin_at_travels_within_retained_epochs() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        let hold = s.pin(); // pin genesis: everything ≥ 0 stays retained
        for i in 1..=4 {
            commit(&s, 1, i);
        }
        for epoch in 0..=4u64 {
            let pin = s.pin_at(epoch).expect("epoch within retained span");
            assert_eq!(s.read_at(&1, pin), Some(epoch as i64));
            s.unpin(pin);
        }
        assert_eq!(
            s.pin_at(9),
            Err(PinError::Future { requested: 9, watermark: 4 }),
            "cannot pin the future"
        );
        s.unpin(hold);
    }

    #[test]
    fn pin_at_rejects_pruned_epochs() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        for i in 1..=3 {
            commit(&s, 1, i);
        }
        // No pins were live, so every superseded version is gone and the
        // sweep bound was conceded: the deep past must be rejected.
        let pin = s.pin();
        s.unpin(pin); // trigger a sweep that raises the concession
        match s.pin_at(0) {
            Err(PinError::Pruned { requested: 0, oldest_retained }) => {
                assert!(oldest_retained > 0);
            }
            other => panic!("expected Pruned, got {other:?}"),
        }
        // The present always pins.
        let now = s.pin_at(s.watermark()).expect("watermark is always retained");
        s.unpin(now);
    }

    #[test]
    fn version_budget_bounds_chains_under_a_stuck_pin() {
        let s: MvccStore<u64, i64> = MvccStore::with_budget(4, 3);
        s.append(&1, GENESIS_EPOCH, 0);
        let stuck = s.pin(); // never dropped: simulates a wedged reader
        for i in 1..=10 {
            commit(&s, 1, i);
        }
        let chain = s.chain(&1);
        assert!(chain.len() <= 3, "budget must bound the chain, got {chain:?}");
        assert_eq!(chain.last(), Some(&(10, 10)), "newest version always retained");
        // The stuck pin's epoch was conceded: new time-travel pins below
        // the force-pruned span are rejected rather than inconsistent.
        assert!(s.oldest_retained() > GENESIS_EPOCH);
        assert!(matches!(s.pin_at(GENESIS_EPOCH), Err(PinError::Pruned { .. })));
        // The expired pin lost its history: the force-pruned key reads as
        // absent at the stuck epoch (documented budget trade-off), and the
        // expiry is detectable by comparing the pin to oldest_retained.
        assert_eq!(s.read_at(&1, stuck), None);
        assert!(stuck < s.oldest_retained());
        s.unpin(stuck);
        assert_eq!(s.chain(&1), vec![(10, 10)]);
    }

    #[test]
    fn repin_shares_the_epoch() {
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        let pin = s.pin();
        s.repin(pin);
        assert_eq!(s.counters().pins_live, 2);
        commit(&s, 1, 1);
        s.unpin(pin);
        assert_eq!(s.read_at(&1, pin), Some(0), "clone still holds the version");
        s.unpin(pin);
        assert_eq!(s.chain(&1), vec![(1, 1)]);
    }

    #[test]
    fn concurrent_pins_never_lose_their_version() {
        // Regression: `unpin` once swept *outside* the pin-table lock
        // with its captured minimum. A fresh pin plus a publish could
        // land in between, and the stale sweep then dropped the very
        // version the new pin resolves to. Under churn, every live pin
        // must always resolve every seeded key.
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        const KEYS: u64 = 8;
        let s = Arc::new(MvccStore::<u64, i64>::new(4));
        for k in 0..KEYS {
            s.append(&k, GENESIS_EPOCH, k as i64);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let publish = s.begin_publish();
                    let epoch = publish.epoch();
                    s.append(&(v as u64 % KEYS), epoch, v);
                    drop(publish);
                    v += 1;
                }
            })
        };
        let pinners: Vec<_> = (0..2)
            .map(|p| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..20_000u64 {
                        let pin = s.pin();
                        let key = (p + i) % KEYS;
                        assert!(s.read_at(&key, pin).is_some(), "live pin at {pin} lost key {key}");
                        assert_eq!(
                            s.range_at(.., pin).len(),
                            KEYS as usize,
                            "live pin at {pin} lost part of the keyspace"
                        );
                        s.unpin(pin);
                    }
                })
            })
            .collect();
        for h in pinners {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn concurrent_pins_never_lose_their_version_legacy_mode() {
        // The same churn storm against the pre-scaling locked pin table
        // (`fast_pins = false`), which the hot-path benchmark's legacy
        // arm runs — it must stay exactly as safe as before.
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        const KEYS: u64 = 8;
        let s = Arc::new(MvccStore::<u64, i64>::with_opts(4, 0, false));
        for k in 0..KEYS {
            s.append(&k, GENESIS_EPOCH, k as i64);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let publish = s.begin_publish();
                    let epoch = publish.epoch();
                    s.append(&(v as u64 % KEYS), epoch, v);
                    drop(publish);
                    v += 1;
                }
            })
        };
        let pinners: Vec<_> = (0..2)
            .map(|p| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        let pin = s.pin();
                        let key = (p + i) % KEYS;
                        assert!(s.read_at(&key, pin).is_some(), "live pin at {pin} lost key {key}");
                        s.unpin(pin);
                    }
                })
            })
            .collect();
        for h in pinners {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        assert_eq!(s.counters().pins_live, 0);
    }

    #[test]
    fn fast_pins_fall_back_on_ring_slot_collision() {
        // Two live pins whose epochs collide modulo the ring size cannot
        // share a slot: the second lands in the locked table instead,
        // and both still hold their versions until released.
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        let old = s.pin();
        for _ in 0..RING_SLOTS {
            commit(&s, 1, 1);
        }
        let new = s.pin();
        assert_eq!(new, old + RING_SLOTS as u64, "epochs collide modulo the ring");
        assert_eq!(s.counters().pins_live, 2);
        assert_eq!(s.read_at(&1, old), Some(0), "colliding pin still resolves");
        s.unpin(old);
        s.unpin(new);
        assert_eq!(s.counters().pins_live, 0);
        s.unpin(s.pin()); // quiescent release forces a settle + sweep
        assert_eq!(s.chain(&1).len(), 1, "chains collapse once all pins drop");
    }

    #[test]
    fn fast_pins_mix_ring_and_tree_at_one_epoch() {
        // `pin()` lands in the ring, `pin_at` of the same epoch lands in
        // the tree. Counts at one epoch are fungible: releases resolve
        // against either copy and the totals stay exact.
        let s = store();
        s.append(&1, GENESIS_EPOCH, 0);
        commit(&s, 1, 1);
        let ring_pin = s.pin();
        let tree_pin = s.pin_at(ring_pin).expect("watermark epoch is retained");
        assert_eq!(ring_pin, tree_pin);
        assert_eq!(s.counters().pins_live, 2);
        commit(&s, 1, 2);
        s.unpin(ring_pin);
        assert_eq!(s.read_at(&1, tree_pin), Some(1), "remaining pin holds the version");
        s.unpin(tree_pin);
        assert_eq!(s.counters().pins_live, 0);
        assert_eq!(s.chain(&1), vec![(2, 2)]);
    }
}
