//! # rnt-mvcc
//!
//! The multi-version object store behind lock-free snapshot reads: the
//! paper's level-3 version maps (Lemma 16–17), promoted from the theory
//! crate into an engine subsystem.
//!
//! The level-3 algebra `A''` materializes concurrency control as
//! per-object **version maps** — for each object, the sequence of versions
//! the lock discipline has stacked up. The engine keeps only the *live*
//! prefix of that structure in its lock table (the uncommitted write
//! stack); this crate keeps the *committed suffix*: for every object, the
//! chain of values successive top-level commits published, each stamped
//! with the **commit epoch** — a monotonically increasing counter
//! advanced once per top-level commit.
//!
//! A snapshot **pins** an epoch and reads, for each object, the latest
//! version whose epoch is ≤ its pin. Because only top-level commits create
//! versions, every version is in `perm(T)` (Lemma 7): a snapshot can never
//! observe a subtransaction's revocable write, and the state it sees is
//! exactly the committed state after its pinned epoch — a prefix-closed,
//! data-serializable view (Theorem 9) obtained without touching the lock
//! manager.
//!
//! Reclamation is epoch-based: a version is reclaimable once it is
//! superseded and no live snapshot pins an epoch below its successor's
//! (the watermark rule — see [`MvccStore`] for the precise statement and
//! why it is race-free against pin creation).
//!
//! The store also maintains a sharded **ordered key index** alongside the
//! chains — updated under the same shard lock as every append, so the
//! single-publish, batch-publish, and recovery-replay paths all keep it
//! consistent for free. [`MvccStore::range_at`] walks it to produce
//! key-ordered scans resolved at a pinned epoch, and [`MvccStore::pin_at`]
//! pins *past* epochs (time travel) down to the oldest retained one, with
//! [`PinError`] distinguishing pruned history from the unpublished future.

#![warn(missing_docs)]

mod store;

pub use store::{
    MvccCounters, MvccStore, PinError, Publish, PublishBatch, PublishGate, GENESIS_EPOCH,
};
