//! A naive reference implementation of nested-transaction semantics, used
//! as a differential-testing oracle for the engine.
//!
//! Semantics are implemented in the most obvious possible way — each
//! transaction holds a full *copy* of its parent's view of the store;
//! commit merges the copy into the parent, abort drops it — so the code
//! is trivially auditable. Any single-threaded operation sequence must
//! produce identical reads and identical final state on `rnt_core::Db`
//! and on this interpreter.

use std::collections::HashMap;

/// A store view: key → value.
type View = HashMap<u64, i64>;

/// The reference interpreter: a stack of nested views per open
/// transaction path, over a base store.
#[derive(Clone, Debug)]
pub struct RefStore {
    base: View,
    /// Open transactions, outermost first; each holds its current view.
    stack: Vec<View>,
}

/// Errors mirroring the engine's semantics for single-threaded use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefError {
    /// Key not seeded.
    UnknownKey,
    /// Operation on a transaction that is not the innermost open one, or
    /// no transaction open.
    BadNesting,
}

impl RefStore {
    /// Seed a store.
    pub fn new(initial: impl IntoIterator<Item = (u64, i64)>) -> Self {
        RefStore { base: initial.into_iter().collect(), stack: Vec::new() }
    }

    /// Open a (sub)transaction: its view is a copy of the current view.
    pub fn begin(&mut self) {
        let view = self.current().clone();
        self.stack.push(view);
    }

    fn current(&self) -> &View {
        self.stack.last().unwrap_or(&self.base)
    }

    /// Nesting depth (0 = no open transaction).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Read in the innermost transaction.
    pub fn read(&self, key: u64) -> Result<i64, RefError> {
        if self.stack.is_empty() {
            return Err(RefError::BadNesting);
        }
        self.current().get(&key).copied().ok_or(RefError::UnknownKey)
    }

    /// Read-modify-write in the innermost transaction; returns the value
    /// seen.
    pub fn rmw(&mut self, key: u64, f: impl FnOnce(i64) -> i64) -> Result<i64, RefError> {
        let Some(view) = self.stack.last_mut() else {
            return Err(RefError::BadNesting);
        };
        let slot = view.get_mut(&key).ok_or(RefError::UnknownKey)?;
        let seen = *slot;
        *slot = f(seen);
        Ok(seen)
    }

    /// Commit the innermost transaction into its parent (or the base).
    pub fn commit(&mut self) -> Result<(), RefError> {
        let view = self.stack.pop().ok_or(RefError::BadNesting)?;
        match self.stack.last_mut() {
            Some(parent) => *parent = view,
            None => self.base = view,
        }
        Ok(())
    }

    /// Abort the innermost transaction: its view is discarded.
    pub fn abort(&mut self) -> Result<(), RefError> {
        self.stack.pop().map(|_| ()).ok_or(RefError::BadNesting)
    }

    /// The committed (base) value of a key.
    pub fn committed_value(&self, key: u64) -> Option<i64> {
        self.base.get(&key).copied()
    }
}

/// A single-threaded nested-transaction script operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptOp {
    /// Open a subtransaction (or the top-level one at depth 0).
    Begin,
    /// Read a key in the innermost transaction.
    Read(u64),
    /// Add a constant to a key in the innermost transaction.
    Add(u64, i64),
    /// Overwrite a key in the innermost transaction.
    Write(u64, i64),
    /// Commit the innermost transaction.
    Commit,
    /// Abort the innermost transaction.
    Abort,
}

/// Run a script against the engine and the reference side by side,
/// asserting identical observations; returns the number of ops executed.
///
/// The script is normalized on the fly: ops at depth 0 other than `Begin`
/// are skipped, and unclosed transactions are committed at the end.
pub fn run_differential(keys: u64, script: &[ScriptOp]) -> Result<usize, String> {
    use rnt_core::Db;
    let db: Db<u64, i64> = Db::new();
    let mut reference = RefStore::new((0..keys).map(|k| (k, k as i64 * 10)));
    for k in 0..keys {
        db.insert(k, k as i64 * 10);
    }
    let mut open: Vec<rnt_core::Txn<u64, i64>> = Vec::new();
    let mut executed = 0;
    for op in script {
        match op {
            ScriptOp::Begin => {
                let txn = match open.last() {
                    None => db.begin(),
                    Some(parent) => parent.child().map_err(|e| e.to_string())?,
                };
                open.push(txn);
                reference.begin();
            }
            ScriptOp::Read(k) => {
                let Some(txn) = open.last() else { continue };
                let engine = txn.read(k);
                let reference_out = reference.read(*k);
                match (&engine, &reference_out) {
                    (Ok(a), Ok(b)) if a == b => {}
                    (Err(rnt_core::TxnError::UnknownKey), Err(RefError::UnknownKey)) => {}
                    other => return Err(format!("read({k}) diverged: {other:?}")),
                }
            }
            ScriptOp::Add(k, d) => {
                let Some(txn) = open.last() else { continue };
                let engine = txn.rmw(k, |v| v.wrapping_add(*d));
                let reference_out = reference.rmw(*k, |v| v.wrapping_add(*d));
                match (&engine, &reference_out) {
                    (Ok(a), Ok(b)) if a == b => {}
                    (Err(rnt_core::TxnError::UnknownKey), Err(RefError::UnknownKey)) => {}
                    other => return Err(format!("add({k},{d}) diverged: {other:?}")),
                }
            }
            ScriptOp::Write(k, v) => {
                let Some(txn) = open.last() else { continue };
                let engine = txn.write(k, *v);
                let reference_out = reference.rmw(*k, |_| *v);
                match (&engine, &reference_out) {
                    (Ok(a), Ok(b)) if a == b => {}
                    (Err(rnt_core::TxnError::UnknownKey), Err(RefError::UnknownKey)) => {}
                    other => return Err(format!("write({k},{v}) diverged: {other:?}")),
                }
            }
            ScriptOp::Commit => {
                let Some(txn) = open.pop() else { continue };
                txn.commit().map_err(|e| e.to_string())?;
                reference.commit().map_err(|e| format!("{e:?}"))?;
            }
            ScriptOp::Abort => {
                let Some(txn) = open.pop() else { continue };
                txn.abort();
                reference.abort().map_err(|e| format!("{e:?}"))?;
            }
        }
        executed += 1;
    }
    // Close any remaining transactions by committing innermost-first.
    while let Some(txn) = open.pop() {
        txn.commit().map_err(|e| e.to_string())?;
        reference.commit().map_err(|e| format!("{e:?}"))?;
    }
    for k in 0..keys {
        let engine = db.committed_value(&k);
        let reference_out = reference.committed_value(k);
        if engine != reference_out {
            return Err(format!("final value of {k} diverged: {engine:?} vs {reference_out:?}"));
        }
    }
    Ok(executed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_nesting_semantics() {
        let mut r = RefStore::new([(0, 1)]);
        r.begin();
        r.rmw(0, |v| v + 1).unwrap();
        r.begin();
        r.rmw(0, |v| v * 10).unwrap();
        assert_eq!(r.read(0), Ok(20));
        r.abort().unwrap();
        assert_eq!(r.read(0), Ok(2), "child abort restores parent view");
        r.commit().unwrap();
        assert_eq!(r.committed_value(0), Some(2));
    }

    #[test]
    fn reference_rejects_toplevel_ops() {
        let mut r = RefStore::new([(0, 1)]);
        assert_eq!(r.read(0), Err(RefError::BadNesting));
        assert_eq!(r.commit(), Err(RefError::BadNesting));
        assert_eq!(r.abort(), Err(RefError::BadNesting));
        r.begin();
        assert_eq!(r.read(9), Err(RefError::UnknownKey));
    }

    #[test]
    fn differential_on_fixed_script() {
        let script = vec![
            ScriptOp::Begin,
            ScriptOp::Add(0, 5),
            ScriptOp::Begin,
            ScriptOp::Write(1, 99),
            ScriptOp::Read(0),
            ScriptOp::Abort,
            ScriptOp::Read(1), // back to parent's view
            ScriptOp::Begin,
            ScriptOp::Add(1, 1),
            ScriptOp::Commit,
            ScriptOp::Commit,
            ScriptOp::Read(0), // skipped: depth 0
        ];
        run_differential(3, &script).unwrap();
    }

    #[test]
    fn differential_unknown_keys_agree() {
        let script = vec![ScriptOp::Begin, ScriptOp::Read(77), ScriptOp::Add(66, 1)];
        run_differential(2, &script).unwrap();
    }
}
