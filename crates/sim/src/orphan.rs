//! Orphan-view consistency checking (experiment E9).
//!
//! The paper (§1) reports that the Argus group wants even *orphans* —
//! subtransactions of aborted transactions — to see views "that could
//! occur during an execution in which they are not orphans", and leaves
//! proving this to future work (Goree's thesis). We render the property
//! executable: at each `perform_{A,u}`, compare `u` against the
//! counterfactual expected value ([`rnt_model::Aat::counterfactual_expected_value`])
//! and count anomalies. Live performs can never be anomalous (Lemma 6 +
//! d13); the interesting counts are the orphans'.

use rnt_algebra::Algebra;
use rnt_model::{Aat, TxEvent, Universe};

/// Counts from one run's orphan-view check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OrphanViewReport {
    /// Total performs observed.
    pub performs: usize,
    /// Performs executed by orphans (dead at perform time).
    pub orphan_performs: usize,
    /// Performs whose value differs from the counterfactual expectation.
    pub anomalies: usize,
    /// Anomalies among live performs (must be 0 at every level).
    pub live_anomalies: usize,
}

/// Check orphan-view consistency along a valid run of any algebra whose
/// events are [`TxEvent`]s, given a projection from states to AATs.
pub fn check_orphan_views<A>(
    algebra: &A,
    universe: &Universe,
    run: &[A::Event],
    project: impl Fn(&A::State) -> &Aat,
) -> OrphanViewReport
where
    A: Algebra<Event = TxEvent>,
{
    let mut report = OrphanViewReport::default();
    let mut state = algebra.initial();
    for event in run {
        if let TxEvent::Perform(a, u) = event {
            let aat = project(&state);
            report.performs += 1;
            let orphan = aat.tree.is_dead(a);
            if orphan {
                report.orphan_performs += 1;
            }
            let expected = aat.counterfactual_expected_value(a, universe);
            if *u != expected {
                report.anomalies += 1;
                if !orphan {
                    report.live_anomalies += 1;
                }
            }
        }
        state = algebra.apply(&state, event).expect("run is valid");
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_run, random_universe, UniverseConfig};
    use rnt_locking::{Level3, Level4};
    use rnt_spec::Level2;
    use std::sync::Arc;

    fn config() -> UniverseConfig {
        UniverseConfig { objects: 2, top_actions: 2, max_fanout: 2, max_depth: 3, inner_prob: 0.5 }
    }

    #[test]
    fn live_performs_never_anomalous_at_any_level() {
        for seed in 0..40u64 {
            let u = Arc::new(random_universe(seed, &config()));
            let l2 = Level2::new(u.clone());
            let run = random_run(&l2, seed, 50);
            let r = check_orphan_views(&l2, &u, &run, |aat| aat);
            assert_eq!(r.live_anomalies, 0, "live anomaly at level 2, seed {seed}");
            let l3 = Level3::new(u.clone());
            let run = random_run(&l3, seed, 50);
            let r = check_orphan_views(&l3, &u, &run, |s| &s.aat);
            assert_eq!(r.live_anomalies, 0, "live anomaly at level 3, seed {seed}");
            let l4 = Level4::new(u.clone());
            let run = random_run(&l4, seed, 50);
            let r = check_orphan_views(&l4, &u, &run, |s| &s.aat);
            assert_eq!(r.live_anomalies, 0, "live anomaly at level 4, seed {seed}");
        }
    }

    #[test]
    fn level2_orphans_can_be_anomalous() {
        // The level-2 spec leaves orphan values unconstrained; random runs
        // over enough seeds must exhibit at least one orphan anomaly —
        // demonstrating that the paper's basic conditions do NOT give
        // orphan-view consistency (their §1 caveat).
        let mut orphan_performs = 0;
        let mut anomalies = 0;
        for seed in 0..200u64 {
            let u = Arc::new(random_universe(seed, &config()));
            let l2 = Level2::new(u.clone());
            let run = random_run(&l2, seed, 60);
            let r = check_orphan_views(&l2, &u, &run, |aat| aat);
            orphan_performs += r.orphan_performs;
            anomalies += r.anomalies;
        }
        assert!(orphan_performs > 0, "generator never orphaned a perform");
        assert!(anomalies > 0, "expected level-2 orphan anomalies, found none");
    }

    #[test]
    fn level3_orphans_mostly_consistent() {
        // Level 3's unconditional d13 pins orphan values to the lock
        // stack; anomalies can arise only through lose-lock races, so
        // they must be rare relative to orphan performs.
        let mut orphan_performs = 0usize;
        let mut anomalies = 0usize;
        for seed in 0..200u64 {
            let u = Arc::new(random_universe(seed, &config()));
            let l3 = Level3::new(u.clone());
            let run = random_run(&l3, seed, 60);
            let r = check_orphan_views(&l3, &u, &run, |s| &s.aat);
            orphan_performs += r.orphan_performs;
            anomalies += r.anomalies;
        }
        assert!(orphan_performs > 0, "generator never orphaned a perform");
        assert!(
            anomalies * 2 <= orphan_performs,
            "level 3 should be mostly consistent: {anomalies}/{orphan_performs}"
        );
    }
}
