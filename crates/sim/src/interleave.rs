//! Deterministic interleaved execution of engine workloads.
//!
//! OS-thread concurrency is irreproducible; this driver runs N *logical*
//! workers on one thread, interleaving their individual operations under a
//! seeded scheduler. With [`rnt_core::DeadlockPolicy::NoWait`] every
//! operation is non-blocking, so any interleaving can be driven to
//! completion — and every run is exactly reproducible from its seed. This
//! is the engine's analogue of the algebra explorer: seeded schedule
//! sweeps whose audits are checked against the formal model (E4b).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnt_core::{Db, DbConfig, DeadlockPolicy, Txn, TxnError};

/// Shape of an interleaved run.
#[derive(Clone, Copy, Debug)]
pub struct InterleaveConfig {
    /// Number of logical workers.
    pub workers: usize,
    /// Top-level transactions each worker completes.
    pub txns_per_worker: u32,
    /// Subtransactions per top-level transaction.
    pub children: u32,
    /// Operations per subtransaction.
    pub ops_per_child: u32,
    /// Number of keys.
    pub keys: u64,
    /// Fraction of operations that are reads.
    pub read_ratio: f64,
    /// Probability a completed subtransaction is aborted (failure
    /// injection).
    pub abort_prob: f64,
    /// Scheduler + operation seed.
    pub seed: u64,
}

impl Default for InterleaveConfig {
    fn default() -> Self {
        InterleaveConfig {
            workers: 4,
            txns_per_worker: 10,
            children: 2,
            ops_per_child: 2,
            keys: 8,
            read_ratio: 0.5,
            abort_prob: 0.1,
            seed: 0,
        }
    }
}

/// Outcome of an interleaved run.
#[derive(Clone, Copy, Debug, Default)]
pub struct InterleaveResult {
    /// Scheduler steps taken.
    pub steps: u64,
    /// Top-level commits.
    pub committed: u64,
    /// Subtransaction retries (contention deaths + injected aborts).
    pub retries: u64,
}

/// One worker's control state.
enum Phase {
    Idle,
    /// In a top-level txn, about to start child `c`.
    StartChild {
        c: u32,
    },
    /// Inside child `c`, `done` ops completed.
    InChild {
        c: u32,
        done: u32,
    },
    /// Finished all children, top-level commit pending.
    Finishing,
    Done,
}

struct Worker {
    rng: StdRng,
    phase: Phase,
    top: Option<Txn<u64, i64>>,
    child: Option<Txn<u64, i64>>,
    committed: u32,
}

/// Drive a full interleaved run against a fresh audited database; returns
/// the database (for audit inspection) and counters.
pub fn run_interleaved(config: &InterleaveConfig) -> (Db<u64, i64>, InterleaveResult) {
    let db: Db<u64, i64> =
        Db::with_config(DbConfig::builder().policy(DeadlockPolicy::NoWait).audit(true).build());
    for k in 0..config.keys {
        db.insert(k, 0);
    }
    let mut sched = StdRng::seed_from_u64(config.seed ^ 0x5eed);
    let mut workers: Vec<Worker> = (0..config.workers)
        .map(|w| Worker {
            rng: StdRng::seed_from_u64(config.seed.wrapping_add(w as u64)),
            phase: Phase::Idle,
            top: None,
            child: None,
            committed: 0,
        })
        .collect();
    let mut result = InterleaveResult::default();

    loop {
        let live: Vec<usize> = workers
            .iter()
            .enumerate()
            .filter(|(_, w)| !matches!(w.phase, Phase::Done))
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            break;
        }
        let w = &mut workers[live[sched.gen_range(0..live.len())]];
        result.steps += 1;
        step(&db, config, w, &mut result);
    }
    result.committed = workers.iter().map(|w| w.committed as u64).sum();
    (db, result)
}

/// Advance one worker by (at most) one engine operation.
fn step(
    db: &Db<u64, i64>,
    config: &InterleaveConfig,
    w: &mut Worker,
    result: &mut InterleaveResult,
) {
    match w.phase {
        Phase::Idle => {
            w.top = Some(db.begin());
            w.phase = Phase::StartChild { c: 0 };
        }
        Phase::StartChild { c } => {
            if c >= config.children {
                w.phase = Phase::Finishing;
                return;
            }
            match w.top.as_ref().expect("in txn").child() {
                Ok(child) => {
                    w.child = Some(child);
                    w.phase = Phase::InChild { c, done: 0 };
                }
                Err(_) => {
                    // Top transaction unusable; abandon and restart.
                    w.top.take();
                    w.phase = Phase::Idle;
                }
            }
        }
        Phase::InChild { c, done } => {
            let child = w.child.as_ref().expect("in child");
            if done >= config.ops_per_child {
                let child = w.child.take().expect("in child");
                if w.rng.gen_bool(config.abort_prob) {
                    child.abort(); // injected failure: redo this child
                    result.retries += 1;
                    w.phase = Phase::StartChild { c };
                } else if child.commit().is_ok() {
                    w.phase = Phase::StartChild { c: c + 1 };
                } else {
                    result.retries += 1;
                    w.phase = Phase::StartChild { c };
                }
                return;
            }
            let key = w.rng.gen_range(0..config.keys);
            let outcome = if w.rng.gen_bool(config.read_ratio) {
                child.read(&key).map(|_| ())
            } else {
                child.rmw(&key, |v| v + 1).map(|_| ())
            };
            match outcome {
                Ok(()) => w.phase = Phase::InChild { c, done: done + 1 },
                Err(e) if e.is_retryable() => {
                    // Contention death: abort this child, retry it.
                    w.child.take().expect("in child").abort();
                    result.retries += 1;
                    w.phase = Phase::StartChild { c };
                }
                Err(TxnError::Orphaned) | Err(_) => {
                    w.child.take();
                    w.top.take();
                    w.phase = Phase::Idle;
                }
            }
        }
        Phase::Finishing => {
            let top = w.top.take().expect("finishing");
            if top.commit().is_ok() {
                w.committed += 1;
            }
            w.phase = if w.committed >= config.txns_per_worker { Phase::Done } else { Phase::Idle };
        }
        Phase::Done => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_reproducible() {
        let cfg = InterleaveConfig { seed: 42, ..InterleaveConfig::default() };
        let (db1, r1) = run_interleaved(&cfg);
        let (db2, r2) = run_interleaved(&cfg);
        assert_eq!(r1.steps, r2.steps);
        assert_eq!(r1.retries, r2.retries);
        assert_eq!(
            db1.audit_log().unwrap().records(),
            db2.audit_log().unwrap().records(),
            "identical seeds give identical audited histories"
        );
        // A different seed gives a different schedule.
        let (db3, _) = run_interleaved(&InterleaveConfig { seed: 43, ..cfg });
        assert_ne!(db1.audit_log().unwrap().records(), db3.audit_log().unwrap().records());
    }

    #[test]
    fn every_seed_is_serializable() {
        for seed in 0..30 {
            let cfg = InterleaveConfig { seed, ..InterleaveConfig::default() };
            let (db, r) = run_interleaved(&cfg);
            assert_eq!(r.committed, 40, "seed {seed}");
            let (universe, aat) = db.audit_log().unwrap().reconstruct().unwrap();
            assert!(
                aat.perm().is_rw_data_serializable(&universe),
                "seed {seed} produced a non-serializable schedule"
            );
            let (_, _, _, live_anomalies) =
                db.audit_log().unwrap().orphan_view_anomalies().unwrap();
            assert_eq!(live_anomalies, 0, "seed {seed}");
        }
    }

    #[test]
    fn conservation_per_seed() {
        for seed in 0..10 {
            let cfg = InterleaveConfig {
                seed,
                read_ratio: 0.0,
                abort_prob: 0.2,
                ..InterleaveConfig::default()
            };
            let (db, r) = run_interleaved(&cfg);
            let total: i64 = (0..cfg.keys).map(|k| db.committed_value(&k).unwrap()).sum();
            let expected = r.committed as i64 * (cfg.children as i64) * (cfg.ops_per_child as i64);
            assert_eq!(total, expected, "seed {seed}: lost or phantom increments");
        }
    }
}
