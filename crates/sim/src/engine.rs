//! Concurrent workloads for the production engine: nested and flat
//! transaction modes, contention/skew knobs, failure injection, and a
//! serial baseline — the machinery behind experiments E4–E7.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnt_core::{Db, DbConfig, Txn, TxnError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the workload structures its transactions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnShape {
    /// One flat transaction per unit of work; any failure retries the
    /// whole transaction.
    Flat,
    /// Work split into subtransactions; a failed subtransaction is retried
    /// *locally* without rolling back its committed siblings.
    Nested {
        /// Number of subtransactions per top-level transaction.
        children: u32,
        /// Nesting depth below the top level (1 = children are leaves).
        depth: u32,
    },
    /// All operations under one global mutex — the serial baseline.
    Serial,
}

/// Key-selection skew.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDist {
    /// Uniform over the key space.
    Uniform,
    /// Zipf with the given exponent (≥ 0; 0 ≡ uniform).
    Zipf(f64),
}

/// A complete workload description.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Number of worker threads.
    pub threads: usize,
    /// Top-level transactions per thread.
    pub txns_per_thread: u32,
    /// Operations per (sub)transaction.
    pub ops_per_txn: u32,
    /// Fraction of operations that are reads.
    pub read_ratio: f64,
    /// Number of keys in the store.
    pub keys: u64,
    /// Key-selection distribution.
    pub dist: KeyDist,
    /// Transaction shape.
    pub shape: TxnShape,
    /// Probability that a (sub)transaction aborts voluntarily at the end
    /// (failure injection; the resilience knob of E7).
    pub abort_prob: f64,
    /// Treat reads as identity writes (exclusive locks only) — the paper's
    /// simplified variant, used as the E6 ablation baseline.
    pub exclusive_reads: bool,
    /// Per-*operation* failure hazard: after each completed operation the
    /// enclosing (sub)transaction fails with this probability and is
    /// retried at the nearest retry boundary — whole transaction for
    /// flat/serial shapes, the failing subtransaction for nested ones.
    /// This is the E7 resilience knob: the same hazard per unit of work,
    /// different blast radius.
    pub op_abort_prob: f64,
    /// Presample each top-level transaction's keys, sort them globally,
    /// and deal consecutive slices to its subtransactions in execution
    /// order — so the whole family (including locks inherited on child
    /// commit) acquires in ascending key order. The classic deadlock-
    /// avoidance discipline: contention (blocking) stays intact while
    /// wait-for cycles become rare, letting benchmarks separate lock-wait
    /// behaviour from deadlock-resolution churn.
    pub sorted_ops: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            threads: 4,
            txns_per_thread: 200,
            ops_per_txn: 4,
            read_ratio: 0.5,
            keys: 256,
            dist: KeyDist::Uniform,
            shape: TxnShape::Nested { children: 4, depth: 1 },
            abort_prob: 0.0,
            exclusive_reads: false,
            op_abort_prob: 0.0,
            sorted_ops: false,
            seed: 42,
        }
    }
}

/// Outcome of a workload run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunResult {
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Top-level transactions committed.
    pub committed: u64,
    /// Transactions (any level) aborted, including injected aborts.
    pub aborted: u64,
    /// Retries performed (full txn for flat, subtxn for nested).
    pub retries: u64,
    /// Completed operations.
    pub ops: u64,
    /// Committed top-level transactions per second.
    pub throughput: f64,
}

/// A precomputed Zipf sampler over `[0, n)`.
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler for `n` items with exponent `s`.
    pub fn new(n: u64, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Sample an index in `[0, n)`.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

fn pick_key(rng: &mut StdRng, keys: u64, dist: &KeyDist, zipf: Option<&ZipfSampler>) -> u64 {
    match dist {
        KeyDist::Uniform => rng.gen_range(0..keys),
        KeyDist::Zipf(_) => zipf.expect("sampler built").sample(rng),
    }
}

/// Number of leaf operations a single child subtree contributes when
/// spawned with `depth` levels remaining (see [`run_nested`]: non-leaf
/// children recurse with a fixed fan-out of 2).
fn subtree_ops(w: &Workload, depth: u32) -> usize {
    w.ops_per_txn as usize * (1usize << (depth.max(1) - 1))
}

/// With [`Workload::sorted_ops`], presample every key the transaction
/// family will touch and sort them; `run_nested` deals consecutive
/// slices to leaves in execution order, so the family's lock
/// acquisitions — including locks inherited on child commit — follow a
/// single ascending order. Built once per top-level attempt so retries
/// replay the same keys.
fn family_plan(rng: &mut StdRng, w: &Workload, zipf: Option<&ZipfSampler>) -> Option<Vec<u64>> {
    if !w.sorted_ops {
        return None;
    }
    let total = match w.shape {
        TxnShape::Flat | TxnShape::Serial => w.ops_per_txn as usize,
        TxnShape::Nested { children, depth } => children as usize * subtree_ops(w, depth),
    };
    let mut plan: Vec<u64> = (0..total).map(|_| pick_key(rng, w.keys, &w.dist, zipf)).collect();
    plan.sort_unstable();
    Some(plan)
}

/// Run `ops` operations within a transaction. Returns the first error;
/// a per-op injected failure surfaces as a retryable [`TxnError::Die`].
/// `plan` is this leaf's slice of the family's sorted key plan, if any.
fn run_ops(
    txn: &Txn<u64, i64>,
    rng: &mut StdRng,
    w: &Workload,
    zipf: Option<&ZipfSampler>,
    ops_done: &AtomicU64,
    plan: Option<&[u64]>,
) -> Result<(), TxnError> {
    for i in 0..w.ops_per_txn {
        let key = match plan {
            Some(p) => p[i as usize],
            None => pick_key(rng, w.keys, &w.dist, zipf),
        };
        if rng.gen_bool(w.read_ratio) {
            if w.exclusive_reads {
                // Simplified-variant ablation: a read takes a write lock.
                txn.rmw(&key, |v| *v)?;
            } else {
                txn.read(&key)?;
            }
        } else {
            txn.rmw(&key, |v| v.wrapping_add(1))?;
        }
        ops_done.fetch_add(1, Ordering::Relaxed);
        if w.op_abort_prob > 0.0 && rng.gen_bool(w.op_abort_prob) {
            // Injected component failure: kill the enclosing work unit.
            return Err(TxnError::Die { blocker: txn.id() });
        }
    }
    Ok(())
}

/// Run a nested subtree of the given depth under `parent`; retries each
/// failed subtransaction locally up to `max_retries`.
#[allow(clippy::too_many_arguments)]
fn run_nested(
    parent: &Txn<u64, i64>,
    rng: &mut StdRng,
    w: &Workload,
    children: u32,
    depth: u32,
    zipf: Option<&ZipfSampler>,
    ops_done: &AtomicU64,
    retries: &AtomicU64,
    injected: &AtomicU64,
    plan: Option<&[u64]>,
) -> Result<(), TxnError> {
    let span = subtree_ops(w, depth);
    for c in 0..children {
        // Each child's slice of the family plan is fixed by position, so
        // a retried subtree replays exactly its own keys.
        let child_plan = plan.map(|p| &p[c as usize * span..(c as usize + 1) * span]);
        let mut attempts = 0;
        loop {
            let child = parent.child()?;
            let outcome = if depth <= 1 {
                run_ops(&child, rng, w, zipf, ops_done, child_plan)
            } else {
                run_nested(
                    &child,
                    rng,
                    w,
                    2,
                    depth - 1,
                    zipf,
                    ops_done,
                    retries,
                    injected,
                    child_plan,
                )
            };
            match outcome {
                Ok(()) if rng.gen_bool(w.abort_prob) => {
                    // Injected failure: abort just this subtree and retry it.
                    child.abort();
                    injected.fetch_add(1, Ordering::Relaxed);
                    retries.fetch_add(1, Ordering::Relaxed);
                }
                Ok(()) => {
                    child.commit()?;
                    break;
                }
                Err(e) if e.is_retryable() => {
                    child.abort();
                    retries.fetch_add(1, Ordering::Relaxed);
                    attempts += 1;
                    if attempts > 10_000 {
                        return Err(e);
                    }
                }
                Err(e) => {
                    child.abort();
                    return Err(e);
                }
            }
        }
    }
    Ok(())
}

/// Execute a workload against a database (which must already hold keys
/// `0..w.keys`). Returns aggregate results.
pub fn run_workload(db: &Db<u64, i64>, w: &Workload) -> RunResult {
    let ops_done = Arc::new(AtomicU64::new(0));
    let retries = Arc::new(AtomicU64::new(0));
    let committed = Arc::new(AtomicU64::new(0));
    let injected = Arc::new(AtomicU64::new(0));
    let serial_gate = Arc::new(parking_lot::Mutex::new(()));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..w.threads {
            let db = db.clone();
            let w = w.clone();
            let ops_done = ops_done.clone();
            let retries = retries.clone();
            let committed = committed.clone();
            let injected = injected.clone();
            let serial_gate = serial_gate.clone();
            scope.spawn(move || {
                let zipf = match w.dist {
                    KeyDist::Zipf(s) => Some(ZipfSampler::new(w.keys, s)),
                    KeyDist::Uniform => None,
                };
                let mut rng = StdRng::seed_from_u64(w.seed ^ (thread as u64) << 32);
                for _ in 0..w.txns_per_thread {
                    // The engine's own retry loop drives the top level;
                    // the gate makes Serial truly serial across threads.
                    let _serial = (w.shape == TxnShape::Serial).then(|| serial_gate.lock());
                    let plan = family_plan(&mut rng, &w, zipf.as_ref());
                    let mut entries: u64 = 0;
                    db.run(|txn| {
                        entries += 1;
                        match w.shape {
                            TxnShape::Flat | TxnShape::Serial => {
                                match run_ops(
                                    txn,
                                    &mut rng,
                                    &w,
                                    zipf.as_ref(),
                                    &ops_done,
                                    plan.as_deref(),
                                ) {
                                    Ok(()) if rng.gen_bool(w.abort_prob) => {
                                        injected.fetch_add(1, Ordering::Relaxed);
                                        Err(TxnError::Die { blocker: txn.id() })
                                    }
                                    other => other,
                                }
                            }
                            TxnShape::Nested { children, depth } => run_nested(
                                txn,
                                &mut rng,
                                &w,
                                children,
                                depth,
                                zipf.as_ref(),
                                &ops_done,
                                &retries,
                                &injected,
                                plan.as_deref(),
                            ),
                        }
                    })
                    .expect("workload keys are seeded; only retryable errors possible");
                    committed.fetch_add(1, Ordering::Relaxed);
                    retries.fetch_add(entries - 1, Ordering::Relaxed);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let stats = db.stats();
    let committed = committed.load(Ordering::Relaxed);
    RunResult {
        elapsed,
        committed,
        aborted: stats.aborted,
        retries: retries.load(Ordering::Relaxed),
        ops: ops_done.load(Ordering::Relaxed),
        throughput: committed as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

/// Seed a database with keys `0..keys`, all zero.
pub fn seeded_db(config: DbConfig, keys: u64) -> Db<u64, i64> {
    let db = Db::with_config(config);
    for k in 0..keys {
        db.insert(k, 0);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_core::DeadlockPolicy;

    fn quick(shape: TxnShape, abort_prob: f64) -> (RunResult, Db<u64, i64>) {
        let db = seeded_db(DbConfig::default(), 64);
        let w = Workload {
            threads: 4,
            txns_per_thread: 30,
            ops_per_txn: 3,
            read_ratio: 0.5,
            keys: 64,
            dist: KeyDist::Uniform,
            shape,
            abort_prob,
            exclusive_reads: false,
            op_abort_prob: 0.0,
            sorted_ops: false,
            seed: 7,
        };
        (run_workload(&db, &w), db)
    }

    #[test]
    fn flat_workload_completes() {
        let (r, _) = quick(TxnShape::Flat, 0.0);
        assert_eq!(r.committed, 120);
        assert!(r.throughput > 0.0);
    }

    #[test]
    fn nested_workload_completes() {
        let (r, _) = quick(TxnShape::Nested { children: 3, depth: 1 }, 0.0);
        assert_eq!(r.committed, 120);
        // 3 children × 3 ops × 120 txns, plus re-runs from retries.
        assert!(r.ops >= 1080, "ops: {}", r.ops);
    }

    #[test]
    fn serial_baseline_completes() {
        let (r, _) = quick(TxnShape::Serial, 0.0);
        assert_eq!(r.committed, 120);
    }

    #[test]
    fn failure_injection_still_commits_everything() {
        let (r, _) = quick(TxnShape::Nested { children: 3, depth: 1 }, 0.2);
        assert_eq!(r.committed, 120, "locally-retried subtxns still converge");
        assert!(r.retries > 0, "injection must have fired");
    }

    #[test]
    fn deep_nesting_workload() {
        let (r, _) = quick(TxnShape::Nested { children: 2, depth: 3 }, 0.05);
        assert_eq!(r.committed, 120);
    }

    #[test]
    fn conservation_under_contention() {
        // Increment-only workload: the sum of all values must equal the
        // number of completed increment ops (no lost updates).
        let db = seeded_db(DbConfig::builder().policy(DeadlockPolicy::WaitDie).build(), 8);
        let w = Workload {
            threads: 4,
            txns_per_thread: 25,
            ops_per_txn: 2,
            read_ratio: 0.0, // all increments
            keys: 8,
            dist: KeyDist::Uniform,
            shape: TxnShape::Nested { children: 2, depth: 1 },
            abort_prob: 0.0,
            exclusive_reads: false,
            op_abort_prob: 0.0,
            sorted_ops: false,
            seed: 3,
        };
        let r = run_workload(&db, &w);
        let total: i64 = (0..8).map(|k| db.committed_value(&k).unwrap()).sum();
        // Committed increments = 2 children × 2 ops × 100 txns = 400; but
        // retried subtxns may have re-run ops, so compare against the
        // *committed* structure: every committed txn contributed exactly 4.
        assert_eq!(total, 4 * r.committed as i64, "no lost or phantom updates");
    }

    #[test]
    fn zipf_sampler_is_skewed() {
        let z = ZipfSampler::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[50] * 5, "head much hotter than tail");
        assert!(counts.iter().sum::<u32>() == 10_000);
    }

    #[test]
    fn exclusive_reads_run_satisfies_plain_theorem9() {
        // With exclusive_reads every access takes a write lock and audits
        // as a Write — the paper's exact single-mode model — so the
        // *unrestricted* Theorem 9 characterization must hold, not just
        // the conflict-restricted one.
        let db = seeded_db(DbConfig::builder().audit(true).build(), 16);
        let w = Workload {
            threads: 4,
            txns_per_thread: 15,
            ops_per_txn: 3,
            read_ratio: 0.6,
            keys: 16,
            dist: KeyDist::Uniform,
            shape: TxnShape::Nested { children: 2, depth: 1 },
            abort_prob: 0.1,
            exclusive_reads: true,
            op_abort_prob: 0.0,
            sorted_ops: false,
            seed: 21,
        };
        run_workload(&db, &w);
        let (universe, aat) = db.audit_log().unwrap().reconstruct().unwrap();
        assert!(aat.perm().is_data_serializable(&universe), "plain Theorem 9 failed");
    }

    #[test]
    fn per_op_hazard_injects_and_converges() {
        let db = seeded_db(DbConfig::default(), 64);
        let w = Workload {
            threads: 4,
            txns_per_thread: 30,
            ops_per_txn: 4,
            read_ratio: 0.5,
            keys: 64,
            dist: KeyDist::Uniform,
            shape: TxnShape::Nested { children: 4, depth: 1 },
            abort_prob: 0.0,
            exclusive_reads: false,
            op_abort_prob: 0.05,
            sorted_ops: false,
            seed: 33,
        };
        let r = run_workload(&db, &w);
        assert_eq!(r.committed, 120);
        assert!(r.retries > 0, "hazard should have fired");
        assert!(r.ops > r.committed * 16, "redone work counted");
    }

    #[test]
    fn audited_workload_serializable() {
        let db = seeded_db(DbConfig::builder().audit(true).build(), 16);
        let w = Workload {
            threads: 4,
            txns_per_thread: 10,
            ops_per_txn: 3,
            read_ratio: 0.5,
            keys: 16,
            dist: KeyDist::Uniform,
            shape: TxnShape::Nested { children: 2, depth: 2 },
            abort_prob: 0.1,
            exclusive_reads: false,
            op_abort_prob: 0.0,
            sorted_ops: false,
            seed: 9,
        };
        run_workload(&db, &w);
        let (universe, aat) = db.audit_log().unwrap().reconstruct().unwrap();
        // The engine uses read/write locks: read-read log order is an
        // artifact, so the conflict-restricted characterization applies.
        assert!(aat.perm().is_rw_data_serializable(&universe));
    }
}
