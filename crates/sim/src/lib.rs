//! # rnt-sim
//!
//! Workload generation, random execution, failure injection and auditing
//! for the resilient-nested-transactions reproduction:
//!
//! * [`gen`] — seeded random universes and valid algebra runs (experiments
//!   E1/E3);
//! * [`aat_gen`] — random arbitrary AATs for cross-validating Theorem 9
//!   (experiment E2);
//! * [`engine`] — concurrent workloads against the `rnt-core` engine with
//!   nested/flat/serial shapes, skew, and failure injection (E4–E7);
//! * [`gossip`] — gossip-policy sweeps over the distributed algebra (E8);
//! * [`orphan`] — orphan-view consistency checking (E9), the paper's
//!   stated open problem;
//! * [`reference`](mod@reference) — a naive copy-on-begin nested-transaction interpreter
//!   used as a differential-testing oracle for the engine;
//! * [`interleave`] — deterministic seeded interleaving of logical workers
//!   against the engine (reproducible schedule sweeps, E4b).
//!
//! ```
//! use rnt_sim::gen::{random_run, random_universe, UniverseConfig};
//! use rnt_spec::Level2;
//! use std::sync::Arc;
//!
//! let universe = Arc::new(random_universe(7, &UniverseConfig::default()));
//! let level2 = Level2::new(universe.clone());
//! let run = random_run(&level2, 42, 30);
//! assert!(rnt_algebra::is_valid(&level2, run));
//! ```

#![warn(missing_docs)]

pub mod aat_gen;
pub mod engine;
pub mod gen;
pub mod gossip;
pub mod interleave;
pub mod orphan;
pub mod reference;
