//! Driving the distributed algebra with gossip policies (experiment E8):
//! how much status traffic does each strategy spend to reach quiescence?

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnt_algebra::Algebra;
use rnt_distributed::{DistEvent, DistState, Level5};
use rnt_model::{ActionSummary, Status, TxEvent};

// One policy vocabulary for the formal sweeps and the runtime router
// (`rnt-cluster`); the enum itself lives next to the algebra it drives.
pub use rnt_distributed::GossipPolicy;

/// Gossip run configuration.
#[derive(Clone, Copy, Debug)]
pub struct GossipConfig {
    /// The gossip strategy.
    pub policy: GossipPolicy,
    /// RNG seed for event selection.
    pub seed: u64,
    /// Safety bound on total steps.
    pub max_steps: usize,
    /// Fail-stop injection: after the given number of transaction events,
    /// the given node stops performing and gossiping entirely.
    pub crash: Option<(usize, usize)>,
}

impl GossipConfig {
    /// A crash-free configuration.
    pub fn new(policy: GossipPolicy, seed: u64) -> Self {
        GossipConfig { policy, seed, max_steps: 200_000, crash: None }
    }
}

/// Traffic and progress accounting for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GossipReport {
    /// Transaction (non-communication) events performed.
    pub tx_events: usize,
    /// `send` events performed.
    pub sends: usize,
    /// `receive` events performed.
    pub receives: usize,
    /// Total summary *entries* shipped (message volume, not just count).
    pub entries_shipped: usize,
    /// True iff the run reached quiescence (no transaction event enabled
    /// at a live node even after a full sync).
    pub quiescent: bool,
    /// True iff the configured crash fired.
    pub crashed: bool,
}

/// Run the distributed algebra under a gossip policy until quiescence or
/// the step bound.
pub fn run_gossip(alg: &Level5, config: &GossipConfig) -> (GossipReport, DistState) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut state = alg.initial();
    let mut report = GossipReport::default();
    let k = alg.topology().node_count();

    let broadcast =
        |state: &mut DistState, from: usize, summary: ActionSummary, report: &mut GossipReport| {
            for to in 0..k {
                if to == from || summary.is_empty() {
                    continue;
                }
                let send = DistEvent::Send { from, to, summary: summary.clone() };
                if let Some(next) = alg.apply(state, &send) {
                    *state = next;
                    report.sends += 1;
                    report.entries_shipped += summary.len();
                    let recv = DistEvent::Receive { to, summary: summary.clone() };
                    if let Some(next) = alg.apply(state, &recv) {
                        *state = next;
                        report.receives += 1;
                    }
                }
            }
        };

    let mut steps = 0;
    let mut since_sync = 0u32;
    let mut crashed: Option<usize> = None;
    loop {
        steps += 1;
        if steps > config.max_steps {
            return (report, state);
        }
        if let Some((node, after)) = config.crash {
            if crashed.is_none() && report.tx_events >= after {
                crashed = Some(node);
                report.crashed = true;
            }
        }
        let alive = |e: &DistEvent| match (e, crashed) {
            (DistEvent::Tx(i, _), Some(c)) => *i != c,
            _ => true,
        };
        // Enabled *transaction* events only (at live nodes); gossip is
        // policy-driven.
        let tx: Vec<DistEvent> = alg
            .enabled(&state)
            .into_iter()
            .filter(|e| matches!(e, DistEvent::Tx(..)) && alive(e))
            .collect();
        if tx.is_empty() {
            // Stalled: force a full sync among live nodes; if that unlocks
            // nothing, done.
            for i in 0..k {
                if crashed == Some(i) {
                    continue;
                }
                let summary = state.nodes[i].summary.clone();
                broadcast(&mut state, i, summary, &mut report);
            }
            let still_stuck =
                !alg.enabled(&state).iter().any(|e| matches!(e, DistEvent::Tx(..)) && alive(e));
            if still_stuck {
                report.quiescent = true;
                return (report, state);
            }
            continue;
        }
        let event = tx[rng.gen_range(0..tx.len())].clone();
        let (doer, delta) = match &event {
            DistEvent::Tx(i, tx) => {
                let delta = match tx {
                    TxEvent::Create(a) => Some((a.clone(), Status::Active)),
                    TxEvent::Commit(a) | TxEvent::Perform(a, _) => {
                        Some((a.clone(), Status::Committed))
                    }
                    TxEvent::Abort(a) => Some((a.clone(), Status::Aborted)),
                    TxEvent::ReleaseLock(..) | TxEvent::LoseLock(..) => None,
                };
                (*i, delta)
            }
            _ => unreachable!("filtered to Tx"),
        };
        state = alg.apply(&state, &event).expect("enabled event applies");
        report.tx_events += 1;
        since_sync += 1;
        match config.policy {
            GossipPolicy::EagerFull => {
                let summary = state.nodes[doer].summary.clone();
                broadcast(&mut state, doer, summary, &mut report);
            }
            GossipPolicy::DeltaOnChange => {
                if let Some((a, s)) = delta {
                    broadcast(&mut state, doer, ActionSummary::singleton(a, s), &mut report);
                }
            }
            GossipPolicy::Periodic(n) => {
                if since_sync >= n {
                    since_sync = 0;
                    for i in 0..k {
                        if Some(i) == crashed {
                            continue;
                        }
                        let summary = state.nodes[i].summary.clone();
                        broadcast(&mut state, i, summary, &mut report);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_universe, UniverseConfig};
    use rnt_distributed::Topology;
    use std::sync::Arc;

    fn setup(nodes: usize) -> Level5 {
        let u = Arc::new(random_universe(
            11,
            &UniverseConfig {
                objects: 3,
                top_actions: 3,
                max_fanout: 2,
                max_depth: 2,
                inner_prob: 0.5,
            },
        ));
        let t = Arc::new(Topology::round_robin(&u, nodes));
        Level5::new(u, t)
    }

    #[test]
    fn all_policies_reach_quiescence() {
        for policy in
            [GossipPolicy::EagerFull, GossipPolicy::DeltaOnChange, GossipPolicy::Periodic(4)]
        {
            let alg = setup(3);
            let (report, _) = run_gossip(
                &alg,
                &GossipConfig { policy, seed: 5, max_steps: 100_000, crash: None },
            );
            assert!(report.quiescent, "{policy:?} did not quiesce: {report:?}");
            assert!(report.tx_events > 0);
        }
    }

    #[test]
    fn delta_ships_fewer_entries_than_eager() {
        let alg = setup(3);
        let (eager, _) = run_gossip(
            &alg,
            &GossipConfig {
                policy: GossipPolicy::EagerFull,
                seed: 5,
                max_steps: 100_000,
                crash: None,
            },
        );
        let alg = setup(3);
        let (delta, _) = run_gossip(
            &alg,
            &GossipConfig {
                policy: GossipPolicy::DeltaOnChange,
                seed: 5,
                max_steps: 100_000,
                crash: None,
            },
        );
        assert!(
            delta.entries_shipped < eager.entries_shipped,
            "delta {delta:?} vs eager {eager:?}"
        );
    }

    #[test]
    fn single_node_needs_no_messages() {
        let alg = setup(1);
        let (report, _) = run_gossip(
            &alg,
            &GossipConfig {
                policy: GossipPolicy::EagerFull,
                seed: 1,
                max_steps: 100_000,
                crash: None,
            },
        );
        assert_eq!(report.sends, 0);
        assert!(report.quiescent);
    }

    #[test]
    fn crash_still_quiesces_and_reduces_progress() {
        let alg = setup(3);
        let (healthy, _) = run_gossip(&alg, &GossipConfig::new(GossipPolicy::EagerFull, 5));
        let alg = setup(3);
        let (crashed, state) = run_gossip(
            &alg,
            &GossipConfig {
                policy: GossipPolicy::EagerFull,
                seed: 5,
                max_steps: 200_000,
                crash: Some((0, 1)),
            },
        );
        assert!(crashed.crashed, "crash must fire");
        assert!(crashed.quiescent, "survivors still quiesce");
        assert!(
            crashed.tx_events < healthy.tx_events,
            "a dead node's work never completes: {} vs {}",
            crashed.tx_events,
            healthy.tx_events
        );
        // The crashed node's knowledge is frozen but still a valid summary.
        assert!(state.nodes[0].summary.len() <= state.nodes[1].summary.len());
    }

    #[test]
    fn final_states_satisfy_theorem_14() {
        // Replay the level-5 run at level 4 (via HDist) and check the AAT.
        // Simpler here: the run itself stays valid (enabled-only), so the
        // local-mapping tests already cover simulation; this checks traffic
        // accounting consistency instead.
        let alg = setup(2);
        let (report, _) = run_gossip(
            &alg,
            &GossipConfig {
                policy: GossipPolicy::EagerFull,
                seed: 2,
                max_steps: 100_000,
                crash: None,
            },
        );
        assert_eq!(report.sends, report.receives, "eager delivery is synchronous");
    }
}
