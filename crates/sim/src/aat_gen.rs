//! Random generation of *arbitrary* (not necessarily computable) augmented
//! action trees, for cross-validating Theorem 9's characterization against
//! the brute-force definition of data-serializability on both satisfying
//! and violating instances.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rnt_model::{Aat, ActionId, Status, Universe};

/// Generate a random AAT over the universe: a random parent-closed subset
/// of actions with random statuses, a random per-object permutation of the
/// committed accesses as the data order, and labels that are *sometimes*
/// correct (folds of visible predecessors) and sometimes corrupted.
pub fn random_aat(universe: &Universe, seed: u64, corrupt_prob: f64) -> Aat {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aat = Aat::trivial();
    // Parent-closed random activation in name order (parents precede
    // children in the builder's declaration order only if we sort by depth).
    let mut actions: Vec<ActionId> = universe.actions().cloned().collect();
    actions.sort_by_key(|a| a.depth());
    for a in actions {
        let parent = a.parent().expect("non-root");
        if !aat.tree.contains(&parent) || !rng.gen_bool(0.8) {
            continue;
        }
        aat.tree.create(a.clone());
        let status = match rng.gen_range(0..10) {
            0..=5 => Status::Committed,
            6..=7 => Status::Active,
            _ => Status::Aborted,
        };
        match status {
            Status::Active => {}
            Status::Committed => aat.tree.set_committed(&a),
            Status::Aborted => aat.tree.set_aborted(&a),
        }
    }
    // Random data order per object over the committed accesses.
    for obj in universe.objects() {
        let mut steps: Vec<ActionId> = aat.tree.datasteps_of(obj.id, universe).collect();
        steps.shuffle(&mut rng);
        for a in steps {
            aat.append_datastep(obj.id, a);
        }
    }
    // Labels: fold of visible data-predecessors, possibly corrupted.
    let labelled: Vec<(ActionId, i64)> = aat
        .data_objects()
        .flat_map(|x| aat.data_order(x).to_vec())
        .map(|a| {
            let x = universe.object_of(&a).expect("datastep");
            let init = universe.init_of(x).expect("declared");
            let correct = rnt_model::fold_updates(
                init,
                aat.v_data(&a, universe).iter().map(|b| universe.update_of(b).expect("datastep")),
            );
            (a, correct)
        })
        .collect();
    for (a, correct) in labelled {
        let label = if rng.gen_bool(corrupt_prob) {
            correct.wrapping_add(rng.gen_range(1..=5))
        } else {
            correct
        };
        aat.tree.set_label(a, label);
    }
    aat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_universe, UniverseConfig};
    use rnt_model::serial::is_data_serializable_bruteforce;

    #[test]
    fn generated_aats_reproducible() {
        let u = random_universe(1, &UniverseConfig::default());
        assert_eq!(random_aat(&u, 5, 0.2), random_aat(&u, 5, 0.2));
    }

    #[test]
    fn theorem9_cross_validation_sample() {
        // The core of experiment E2, in miniature.
        let cfg = UniverseConfig {
            objects: 2,
            top_actions: 2,
            max_fanout: 2,
            max_depth: 2,
            inner_prob: 0.4,
        };
        let mut agree_ser = 0;
        let mut agree_not = 0;
        for seed in 0..200 {
            let u = random_universe(seed, &cfg);
            let aat = random_aat(&u, seed.wrapping_mul(31), 0.3);
            let characterized = aat.is_data_serializable(&u);
            let brute = is_data_serializable_bruteforce(&aat, &u);
            assert_eq!(characterized, brute, "Theorem 9 disagreement at seed {seed}: {aat:?}");
            if brute {
                agree_ser += 1;
            } else {
                agree_not += 1;
            }
        }
        // The generator must exercise both outcomes to be a real test.
        assert!(agree_ser > 10, "too few serializable instances: {agree_ser}");
        assert!(agree_not > 10, "too few violating instances: {agree_not}");
    }

    #[test]
    fn zero_corruption_mostly_serializable_modulo_cycles() {
        // With correct labels the only violation source is a sibling-data
        // cycle, so version-compatibility must hold.
        let cfg = UniverseConfig::default();
        for seed in 0..50 {
            let u = random_universe(seed, &cfg);
            let aat = random_aat(&u, seed, 0.0);
            assert!(aat.is_version_compatible(&u), "labels were computed correctly");
        }
    }
}
