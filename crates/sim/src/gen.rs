//! Seeded random generation of universes and algebra runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnt_algebra::Algebra;
use rnt_model::{ActionId, Universe, UniverseBuilder, UpdateFn};

/// Shape parameters for random action universes.
#[derive(Clone, Copy, Debug)]
pub struct UniverseConfig {
    /// Number of data objects.
    pub objects: u32,
    /// Number of top-level actions.
    pub top_actions: u32,
    /// Maximum children per non-access action.
    pub max_fanout: u32,
    /// Maximum nesting depth (1 = flat transactions).
    pub max_depth: u32,
    /// Probability that a node at depth < max_depth is an inner action
    /// rather than an access.
    pub inner_prob: f64,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig { objects: 2, top_actions: 2, max_fanout: 2, max_depth: 3, inner_prob: 0.5 }
    }
}

/// Generate a random universe with the given shape.
pub fn random_universe(seed: u64, config: &UniverseConfig) -> Universe {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = UniverseBuilder::new();
    for x in 0..config.objects {
        b = b.object(x, rng.gen_range(-4..=4));
    }
    fn random_update(rng: &mut StdRng) -> UpdateFn {
        match rng.gen_range(0..5) {
            0 => UpdateFn::Read,
            1 => UpdateFn::Write(rng.gen_range(-4..=4)),
            2 => UpdateFn::Add(rng.gen_range(1..=3)),
            3 => UpdateFn::Mul(rng.gen_range(2..=3)),
            _ => UpdateFn::Xor(rng.gen_range(1..=7)),
        }
    }
    // Depth-first construction.
    fn grow(
        rng: &mut StdRng,
        b: UniverseBuilder,
        parent: &ActionId,
        depth: u32,
        config: &UniverseConfig,
    ) -> UniverseBuilder {
        let mut b = b;
        let fanout = rng.gen_range(1..=config.max_fanout);
        for i in 0..fanout {
            let id = parent.child(i);
            let make_inner = depth < config.max_depth && rng.gen_bool(config.inner_prob);
            if make_inner {
                b = b.action(id.clone());
                b = grow(rng, b, &id, depth + 1, config);
            } else {
                let x = rng.gen_range(0..config.objects);
                b = b.access(id, x, random_update(rng));
            }
        }
        b
    }
    let root = ActionId::root();
    for t in 0..config.top_actions {
        let id = root.child(t);
        b = b.action(id.clone());
        b = grow(&mut rng, b, &id, 2, config);
    }
    b.build().expect("generated universe is well-formed")
}

/// Generate a random valid run of an algebra by repeatedly sampling from
/// `enabled()`. Stops early when no event is enabled.
pub fn random_run<A: Algebra>(algebra: &A, seed: u64, max_steps: usize) -> Vec<A::Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = algebra.initial();
    let mut run = Vec::new();
    for _ in 0..max_steps {
        let enabled = algebra.enabled(&state);
        if enabled.is_empty() {
            break;
        }
        let event = enabled[rng.gen_range(0..enabled.len())].clone();
        state = algebra.apply(&state, &event).expect("enabled event applies");
        run.push(event);
    }
    run
}

/// Generate a random valid run, biased: with probability `bias` pick the
/// lexicographically first enabled event (drives runs deeper instead of
/// spreading across creates).
pub fn random_run_biased<A: Algebra>(
    algebra: &A,
    seed: u64,
    max_steps: usize,
    bias: f64,
) -> Vec<A::Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = algebra.initial();
    let mut run = Vec::new();
    for _ in 0..max_steps {
        let enabled = algebra.enabled(&state);
        if enabled.is_empty() {
            break;
        }
        let idx = if rng.gen_bool(bias) { 0 } else { rng.gen_range(0..enabled.len()) };
        let event = enabled[idx].clone();
        state = algebra.apply(&state, &event).expect("enabled event applies");
        run.push(event);
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_spec::Level2;
    use std::sync::Arc;

    #[test]
    fn universes_are_reproducible() {
        let cfg = UniverseConfig::default();
        let a = random_universe(7, &cfg);
        let b = random_universe(7, &cfg);
        assert_eq!(a, b);
        let c = random_universe(8, &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn universe_respects_limits() {
        let cfg = UniverseConfig {
            objects: 3,
            top_actions: 4,
            max_fanout: 3,
            max_depth: 4,
            inner_prob: 0.7,
        };
        let u = random_universe(42, &cfg);
        assert_eq!(u.object_count(), 3);
        for a in u.actions() {
            assert!(a.depth() <= 5, "depth bound: access below max_depth inner");
        }
        assert!(u.accesses().count() > 0);
    }

    #[test]
    fn random_runs_are_valid_and_reproducible() {
        let u = Arc::new(random_universe(3, &UniverseConfig::default()));
        let alg = Level2::new(u);
        let r1 = random_run(&alg, 11, 40);
        let r2 = random_run(&alg, 11, 40);
        assert_eq!(r1, r2);
        assert!(rnt_algebra::is_valid(&alg, r1.clone()));
        assert!(!r1.is_empty());
    }

    #[test]
    fn biased_runs_valid() {
        let u = Arc::new(random_universe(3, &UniverseConfig::default()));
        let alg = Level2::new(u);
        let r = random_run_biased(&alg, 5, 60, 0.7);
        assert!(rnt_algebra::is_valid(&alg, r));
    }
}
